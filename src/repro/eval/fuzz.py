"""Property-based differential fuzzing of every triangle counter.

The property is singular and total: **every algorithm, kernel and
execution backend returns exactly the dense-oracle count on every
graph**.  The harness generates seeded random cases across structurally
diverse families (skewed Chung-Lu and RMAT graphs next to adversarial
shapes — stars, cliques, paths, empty and single-vertex graphs), runs
the full counter matrix against ``trace(A^3) / 6``, and on any mismatch
minimises the case to a small witness by greedy edge deletion before
reporting it.

Everything is dependency-free (NumPy only — no hypothesis) and fully
deterministic per seed: ``python -m repro.eval.fuzz --cases 200 --seed 7``
re-runs the exact CI corpus.  See ``docs/testing.md`` for the taxonomy
and reproduction workflow.

``--dynamic`` switches to the **dynamic-differential** mode: each case
pairs a seeded base graph with a random insert/delete/compact/query
interleaving, applies it through :class:`repro.dynamic.DynamicGraph` in
batches, and checks after every batch that the incrementally-maintained
count equals a full ``count_triangles_forward`` recount of the snapshot,
that the snapshot's edge set equals a pure-Python shadow simulation, and
that the applied/rejected accounting matches the shadow exactly.
Failing op sequences are ddmin-minimised before reporting.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "FuzzCase",
    "CASE_KINDS",
    "random_case",
    "dense_oracle",
    "fuzz_counters",
    "check_case",
    "minimize_case",
    "format_case",
    "run_fuzz",
    "DynamicFuzzCase",
    "random_dynamic_case",
    "check_dynamic_case",
    "minimize_dynamic_case",
    "format_dynamic_case",
    "run_dynamic_fuzz",
]

CASE_KINDS = (
    "empty",
    "single-vertex",
    "path",
    "star",
    "clique",
    "chung-lu",
    "rmat",
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: an edge list plus its provenance."""

    seed: int
    kind: str
    num_vertices: int
    edges: np.ndarray  # (m, 2) int64, possibly with duplicates/self-loops

    def graph(self) -> CSRGraph:
        return from_edges(self.edges, num_vertices=self.num_vertices)


def random_case(seed: int) -> FuzzCase:
    """Deterministically generate one case from ``seed``.

    Random families dominate (they find counting bugs); degenerate
    shapes keep a fixed share of the corpus (they find edge-case bugs:
    empty intersections, single-element rows, vertex-count-0 paths).
    """
    rng = np.random.default_rng(seed)
    kind = CASE_KINDS[int(rng.integers(len(CASE_KINDS)))]
    if kind == "empty":
        n = int(rng.integers(0, 4))
        return FuzzCase(seed, kind, n, np.zeros((0, 2), dtype=np.int64))
    if kind == "single-vertex":
        return FuzzCase(seed, kind, 1, np.zeros((0, 2), dtype=np.int64))
    if kind == "path":
        n = int(rng.integers(2, 24))
        v = np.arange(n, dtype=np.int64)
        edges = np.column_stack([v[:-1], v[1:]])
        return FuzzCase(seed, kind, n, edges)
    if kind == "star":
        n = int(rng.integers(2, 40))
        edges = np.column_stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
        )
        return FuzzCase(seed, kind, n, edges)
    if kind == "clique":
        n = int(rng.integers(2, 14))
        u, v = np.triu_indices(n, k=1)
        return FuzzCase(seed, kind, n, np.column_stack([u, v]).astype(np.int64))
    if kind == "chung-lu":
        n = int(rng.integers(4, 64))
        # skewed expected-degree sequence: a few heavy vertices
        w = rng.pareto(1.5, size=n) + 1.0
        w = w / w.sum()
        m = int(rng.integers(n, 4 * n))
        u = rng.choice(n, size=m, p=w)
        v = rng.choice(n, size=m, p=w)
        return FuzzCase(seed, kind, n, np.column_stack([u, v]).astype(np.int64))
    # rmat: recursive quadrant sampling — power-law with locality skew
    scale = int(rng.integers(3, 7))
    n = 1 << scale
    m = int(rng.integers(n, 3 * n))
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        quad = np.searchsorted(np.cumsum([0.57, 0.19, 0.19]), r)
        src = src * 2 + (quad >= 2)
        dst = dst * 2 + (quad % 2)
    return FuzzCase(seed, "rmat", n, np.column_stack([src, dst]))


def dense_oracle(graph: CSRGraph) -> int:
    """Reference count: ``trace(A^3) / 6`` on the dense adjacency."""
    n = graph.num_vertices
    if n == 0:
        return 0
    a = np.zeros((n, n), dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    a[src, graph.indices.astype(np.int64, copy=False)] = 1
    return int(np.einsum("ij,jk,ki->", a, a, a)) // 6


def _triangles(result) -> int:
    return int(result if isinstance(result, (int, np.integer)) else result.triangles)


def _forward_with_kernel(graph: CSRGraph, kernel_name: str) -> int:
    """Forward counting driven through one registered intersect kernel.

    The kernel is looked up in ``INTERSECT_KERNELS`` *per call*, so a
    monkeypatched (deliberately broken) kernel is exercised — the harness
    self-test relies on this.
    """
    from repro.tc.intersect import INTERSECT_KERNELS

    kernel = INTERSECT_KERNELS[kernel_name]
    oriented = graph.orient_lower()
    n = graph.num_vertices
    total = 0
    for v in range(n):
        row = oriented.neighbors(v).astype(np.int64, copy=False)
        for u in row:
            other = oriented.neighbors(int(u)).astype(np.int64, copy=False)
            if kernel_name == "bitmap":
                total += kernel(other, row, max(n, 1))
            else:
                total += kernel(other, row)
    return total


def fuzz_counters() -> dict[str, Callable[[CSRGraph], int]]:
    """The full counter matrix: algorithms × kernels × backends."""
    from repro.core import count_triangles_lotus
    from repro.core.adaptive import count_triangles_adaptive
    from repro.tc import (
        INTERSECT_KERNELS,
        count_triangles_block,
        count_triangles_edge_iterator,
        count_triangles_forward,
        count_triangles_forward_hashed,
        count_triangles_matrix,
        count_triangles_node_iterator,
        count_triangles_spgemm,
    )

    counters: dict[str, Callable[[CSRGraph], int]] = {
        "node-iterator": lambda g: _triangles(count_triangles_node_iterator(g)),
        "edge-iterator": lambda g: _triangles(count_triangles_edge_iterator(g)),
        "forward": lambda g: _triangles(count_triangles_forward(g)),
        "forward-hashed": lambda g: _triangles(count_triangles_forward_hashed(g)),
        "block": lambda g: _triangles(count_triangles_block(g)),
        "matrix": lambda g: _triangles(count_triangles_matrix(g)),
        "spgemm": lambda g: _triangles(count_triangles_spgemm(g)),
        "adaptive": lambda g: _triangles(count_triangles_adaptive(g)),
        "lotus": lambda g: _triangles(count_triangles_lotus(g)),
    }
    for name in INTERSECT_KERNELS:
        counters[f"forward-kernel:{name}"] = (
            lambda g, k=name: _forward_with_kernel(g, k)
        )
    # a quarter of the vertices as hubs gives the fuzz-sized graphs real
    # phase-1 work (the default hub heuristic rounds them down to 1 hub)
    from repro.core import LotusConfig

    def _lotus_backend(g: CSRGraph, backend: str) -> int:
        config = LotusConfig(hub_count=max(1, g.num_vertices // 4))
        return _triangles(
            count_triangles_lotus(g, config, backend=backend, workers=2)
        )

    # "distributed" spawns real shard processes per case (edge-free
    # graphs are answered inline), exactly like "processes" spawns a pool
    for backend in ("threads", "processes", "distributed"):
        counters[f"lotus-{backend}"] = lambda g, b=backend: _lotus_backend(g, b)
    return counters


def check_case(
    case: FuzzCase,
    counters: dict[str, Callable[[CSRGraph], int]] | None = None,
) -> list[str]:
    """Run the counter matrix on one case; returns mismatch descriptions."""
    counters = counters if counters is not None else fuzz_counters()
    graph = case.graph()
    expected = dense_oracle(graph)
    mismatches = []
    for name, fn in counters.items():
        try:
            got = fn(graph)
        except Exception as exc:
            mismatches.append(f"{name}: raised {type(exc).__name__}: {exc}")
            continue
        if got != expected:
            mismatches.append(f"{name}: counted {got}, oracle says {expected}")
    return mismatches


def minimize_case(
    case: FuzzCase,
    is_failing: Callable[[FuzzCase], bool],
    max_checks: int = 400,
) -> FuzzCase:
    """Shrink a failing case by deleting edges (ddmin-style).

    Tries dropping contiguous edge blocks, halving the block size down
    to single edges; every kept deletion must preserve the failure.
    Bounded by ``max_checks`` predicate evaluations so shrinking a slow
    failure cannot hang the harness.
    """
    edges = case.edges
    checks = 0
    block = max(len(edges) // 2, 1)
    while len(edges) and checks < max_checks:
        i = 0
        while i < len(edges) and checks < max_checks:
            candidate = replace(
                case, edges=np.concatenate([edges[:i], edges[i + block:]])
            )
            checks += 1
            if is_failing(candidate):
                edges = candidate.edges
            else:
                i += block
        if block == 1:
            break
        block = max(block // 2, 1)
    return replace(case, edges=edges)


def format_case(case: FuzzCase) -> str:
    """A copy-pasteable snippet that rebuilds the case."""
    pairs = ", ".join(f"({int(u)}, {int(v)})" for u, v in case.edges)
    return (
        f"# fuzz case: seed={case.seed} kind={case.kind} "
        f"|V|={case.num_vertices} |edges|={len(case.edges)}\n"
        "import numpy as np\n"
        "from repro.graph.build import from_edges\n"
        f"edges = np.array([{pairs}], dtype=np.int64).reshape(-1, 2)\n"
        f"graph = from_edges(edges, num_vertices={case.num_vertices})"
    )


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    counters: dict[str, Callable[[CSRGraph], int]] | None = None,
    on_progress: Callable[[int, FuzzCase], None] | None = None,
) -> dict:
    """Run ``cases`` seeded cases; minimise and report the first failure.

    Returns ``{"cases": n, "failure": None}`` on success, or a failure
    dict with the shrunk case, its mismatches and the repro snippet.
    Case ``i`` uses seed ``seed + i`` — any failure reproduces alone.
    """
    counters = counters if counters is not None else fuzz_counters()
    kind_counts: dict[str, int] = {}
    for i in range(cases):
        case = random_case(seed + i)
        kind_counts[case.kind] = kind_counts.get(case.kind, 0) + 1
        if on_progress is not None:
            on_progress(i, case)
        mismatches = check_case(case, counters)
        if mismatches:
            shrunk = minimize_case(
                case, lambda c: bool(check_case(c, counters))
            )
            return {
                "cases": i + 1,
                "kinds": kind_counts,
                "failure": {
                    "seed": case.seed,
                    "kind": case.kind,
                    "mismatches": check_case(shrunk, counters),
                    "original_edges": int(len(case.edges)),
                    "shrunk_edges": int(len(shrunk.edges)),
                    "repro": format_case(shrunk),
                },
            }
    return {"cases": cases, "kinds": kind_counts, "failure": None}


# -- dynamic-differential mode ----------------------------------------------

@dataclass(frozen=True)
class DynamicFuzzCase:
    """One dynamic case: a base graph plus an update/compact op sequence.

    ``ops`` entries are ``("insert", u, v)``, ``("delete", u, v)`` or
    ``("compact",)``.  The sequence is generated replay-consistent
    (deletes target live edges, inserts absent pairs) with a deliberate
    share of no-ops — self-loops, duplicate inserts, absent deletes — so
    the rejection accounting is fuzzed too.
    """

    seed: int
    kind: str
    num_vertices: int
    edges: np.ndarray  # base edge list, (m, 2) int64
    ops: tuple

    def graph(self) -> CSRGraph:
        return from_edges(self.edges, num_vertices=self.num_vertices)


def random_dynamic_case(seed: int, num_ops: int = 60) -> DynamicFuzzCase:
    """Derive a dynamic case from :func:`random_case`'s graph for ``seed``.

    The op stream uses an independent generator (``seed ^ golden-ratio``)
    so the base graph is byte-identical to the static case of the same
    seed — a static-mode failure and its dynamic twin share a corpus.
    """
    base = random_case(seed)
    rng = np.random.default_rng(seed ^ 0x9E3779B9)
    graph = base.graph()
    n = base.num_vertices
    full = n * (n - 1) // 2
    live_list: list[tuple[int, int]] = [
        (int(u), int(v)) for u, v in graph.edges()
    ]
    live = set(live_list)
    dead: list[tuple[int, int]] = []
    ops: list[tuple] = []
    while len(ops) < num_ops:
        roll = rng.random()
        if roll < 0.05 or n < 2:
            ops.append(("compact",))
            continue
        if roll < 0.15:
            # deliberate no-ops: the rejection path is part of the contract
            pick = rng.random()
            if pick < 1 / 3:
                v = int(rng.integers(n))
                ops.append(("insert", v, v))
            elif pick < 2 / 3 and live_list:
                ops.append(
                    ("insert", *live_list[int(rng.integers(len(live_list)))])
                )
            elif dead:
                ops.append(("delete", *dead[int(rng.integers(len(dead)))]))
            else:
                v = int(rng.integers(n))
                ops.append(("delete", v, v))
            continue
        if rng.random() < 0.45 and live_list:
            idx = int(rng.integers(len(live_list)))
            pair = live_list[idx]
            live_list[idx] = live_list[-1]
            live_list.pop()
            live.discard(pair)
            dead.append(pair)
            ops.append(("delete", *pair))
        else:
            if len(live) >= full:  # clique saturated — nothing to insert
                ops.append(("compact",))
                continue
            if dead and rng.random() < 0.3:
                pair = dead.pop(int(rng.integers(len(dead))))
            else:
                while True:
                    u, v = int(rng.integers(n)), int(rng.integers(n))
                    if u == v:
                        continue
                    pair = (min(u, v), max(u, v))
                    if pair not in live:
                        break
            live.add(pair)
            live_list.append(pair)
            ops.append(("insert", *pair))
    return DynamicFuzzCase(seed, base.kind, n, base.edges, tuple(ops))


def check_dynamic_case(case: DynamicFuzzCase, batch: int = 8) -> list[str]:
    """Differentially execute one dynamic case; returns mismatch strings.

    Oracles, checked after **every** batch:

    * maintained count == full forward recount of the current snapshot;
    * snapshot edge set == a pure-Python shadow simulation of the ops;
    * per-batch applied/rejected == the shadow's sequential accounting;
    * compaction changes neither count, version nor effective edges.

    The final state is additionally checked against :func:`dense_oracle`
    and, when hub tracking is on, the incrementally-patched H2H bit
    array is validated bit-for-bit.
    """
    from repro.dynamic import DynamicGraph
    from repro.tc.forward import count_triangles_forward

    try:
        dyn = DynamicGraph(
            case.graph(),
            track_hubs=case.num_vertices >= 2,
            auto_compact_fraction=None,
        )
    except Exception as exc:
        return [f"construct: raised {type(exc).__name__}: {exc}"]
    shadow = {
        (int(u), int(v)) for u, v in dyn.snapshot().graph.edges()
    }
    mismatches: list[str] = []

    def recount_check(label: str) -> None:
        snap = dyn.snapshot()
        recount = int(count_triangles_forward(snap.graph).triangles)
        if dyn.triangles != recount:
            mismatches.append(
                f"{label}: maintained {dyn.triangles}, recount says {recount}"
            )
        got = {(int(u), int(v)) for u, v in snap.graph.edges()}
        if got != shadow:
            extra = sorted(got - shadow)[:4]
            missing = sorted(shadow - got)[:4]
            mismatches.append(
                f"{label}: edge set diverged from shadow "
                f"(extra={extra}, missing={missing})"
            )

    i = 0
    batches = 0
    while i < len(case.ops) and not mismatches:
        kind = case.ops[i][0]
        batches += 1
        if kind == "compact":
            before = (dyn.triangles, dyn.version)
            dyn.compact()
            if (dyn.triangles, dyn.version) != before:
                mismatches.append(
                    f"batch {batches} (compact): count/version changed "
                    f"{before} -> {(dyn.triangles, dyn.version)}"
                )
            recount_check(f"batch {batches} (compact)")
            i += 1
            continue
        j = i
        while j < len(case.ops) and j - i < batch and case.ops[j][0] == kind:
            j += 1
        edges = np.array([op[1:] for op in case.ops[i:j]], dtype=np.int64)
        # sequential shadow accounting (dedup-then-apply is equivalent)
        want_applied = want_rejected = 0
        for u, v in edges.tolist():
            pair = (min(u, v), max(u, v))
            if u == v or (pair in shadow) == (kind == "insert"):
                want_rejected += 1
            elif kind == "insert":
                shadow.add(pair)
                want_applied += 1
            else:
                shadow.discard(pair)
                want_applied += 1
        result = (
            dyn.insert_edges(edges)
            if kind == "insert"
            else dyn.delete_edges(edges)
        )
        if (result.applied, result.rejected) != (want_applied, want_rejected):
            mismatches.append(
                f"batch {batches} ({kind}): applied/rejected "
                f"({result.applied}, {result.rejected}), shadow says "
                f"({want_applied}, {want_rejected})"
            )
        recount_check(f"batch {batches} ({kind})")
        i = j
    if not mismatches:
        expected = dense_oracle(dyn.snapshot().graph)
        if dyn.triangles != expected:
            mismatches.append(
                f"final: maintained {dyn.triangles}, dense oracle says {expected}"
            )
        if dyn.hubs is not None:
            try:
                dyn.hubs.validate()
            except AssertionError as exc:
                mismatches.append(f"final: hub tracker invalid: {exc}")
    return mismatches


def minimize_dynamic_case(
    case: DynamicFuzzCase,
    is_failing: Callable[[DynamicFuzzCase], bool],
    max_checks: int = 400,
) -> DynamicFuzzCase:
    """Shrink a failing op sequence by deleting op blocks (ddmin-style).

    Mirrors :func:`minimize_case` but operates on ``ops`` — dropping
    contiguous blocks, halving the block size down to single ops, keeping
    every deletion that preserves the failure.
    """
    ops = list(case.ops)
    checks = 0
    block = max(len(ops) // 2, 1)
    while ops and checks < max_checks:
        i = 0
        while i < len(ops) and checks < max_checks:
            candidate = replace(case, ops=tuple(ops[:i] + ops[i + block:]))
            checks += 1
            if is_failing(candidate):
                ops = list(candidate.ops)
            else:
                i += block
        if block == 1:
            break
        block = max(block // 2, 1)
    return replace(case, ops=tuple(ops))


def format_dynamic_case(case: DynamicFuzzCase) -> str:
    """A copy-pasteable snippet that rebuilds the dynamic case."""
    op_list = ", ".join(repr(op) for op in case.ops)
    return (
        format_case(case).replace("# fuzz case:", "# dynamic fuzz case:", 1)
        + f"\nops = [{op_list}]"
        + "\nfrom repro.eval.fuzz import DynamicFuzzCase, check_dynamic_case"
        + f"\ncase = DynamicFuzzCase({case.seed}, {case.kind!r}, "
        f"{case.num_vertices}, edges, tuple(ops))"
        + "\nprint(check_dynamic_case(case))"
    )


def run_dynamic_fuzz(
    cases: int = 200,
    seed: int = 0,
    ops_per_case: int = 60,
    on_progress: Callable[[int, DynamicFuzzCase], None] | None = None,
) -> dict:
    """Run ``cases`` dynamic cases; minimise and report the first failure.

    Same contract as :func:`run_fuzz`: case ``i`` uses seed ``seed + i``
    and any failure reproduces alone from its seed.
    """
    kind_counts: dict[str, int] = {}
    for i in range(cases):
        case = random_dynamic_case(seed + i, num_ops=ops_per_case)
        kind_counts[case.kind] = kind_counts.get(case.kind, 0) + 1
        if on_progress is not None:
            on_progress(i, case)
        mismatches = check_dynamic_case(case)
        if mismatches:
            shrunk = minimize_dynamic_case(
                case, lambda c: bool(check_dynamic_case(c))
            )
            return {
                "cases": i + 1,
                "kinds": kind_counts,
                "failure": {
                    "seed": case.seed,
                    "kind": case.kind,
                    "mismatches": check_dynamic_case(shrunk),
                    "original_ops": int(len(case.ops)),
                    "shrunk_ops": int(len(shrunk.ops)),
                    "repro": format_dynamic_case(shrunk),
                },
            }
    return {"cases": cases, "kinds": kind_counts, "failure": None}


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.fuzz",
        description="differential fuzzing of all triangle counters",
    )
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--progress-every", type=int, default=50)
    parser.add_argument(
        "--dynamic", action="store_true",
        help="dynamic-differential mode: fuzz insert/delete/compact "
             "interleavings against full-recount oracles",
    )
    parser.add_argument(
        "--ops", type=int, default=60,
        help="ops per dynamic case (ignored without --dynamic)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    def progress(i: int, case) -> None:
        if args.progress_every and i % args.progress_every == 0:
            print(f"case {i}/{args.cases} (seed {case.seed}, {case.kind})")

    if args.dynamic:
        report = run_dynamic_fuzz(
            args.cases, args.seed, ops_per_case=args.ops, on_progress=progress
        )
        shrunk_unit = "ops"
    else:
        report = run_fuzz(args.cases, args.seed, on_progress=progress)
        shrunk_unit = "edges"
    if report["failure"] is None:
        print(
            f"ok: {report['cases']} cases, no mismatches "
            f"(kinds: {report['kinds']})"
        )
        return 0
    failure = report["failure"]
    print(f"FAILURE at seed {failure['seed']} ({failure['kind']}): ")
    for m in failure["mismatches"]:
        print(f"  {m}")
    print(
        f"shrunk {failure[f'original_{shrunk_unit}']} -> "
        f"{failure[f'shrunk_{shrunk_unit}']} {shrunk_unit}:"
    )
    print(failure["repro"])
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
