"""One function per table and figure of the paper's evaluation.

Every function returns an :class:`~repro.eval.harness.ExperimentResult`
whose ``rows`` regenerate the paper's table/figure on the synthetic
stand-in suite and whose ``paper_reference`` records the corresponding
numbers from the paper for side-by-side comparison (EXPERIMENTS.md).

Heavy artefacts (lotus structures, orientations, traces, replays) are
memoised per dataset so chained experiments do not recompute them.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.core import (
    LotusConfig,
    build_lotus_graph,
    hub_characteristics,
    count_triangles_lotus,
    tiles_for_phase1,
)
from repro.eval.harness import ExperimentResult
from repro.graph import DATASETS, load_dataset
from repro.graph.datasets import LARGE_SUITE, SMALL_SUITE
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    EPYC,
    HASWELL,
    MACHINES,
    MemoryHierarchy,
    SKYLAKEX,
    forward_opcounts,
    forward_trace,
    h2h_access_lines,
    lotus_opcounts,
    lotus_trace,
    modeled_seconds,
)
from repro.parallel import edge_balanced_global_tiles, idle_time_pct
from repro.tc import (
    count_triangles_block,
    count_triangles_edge_iterator,
    count_triangles_forward,
    count_triangles_forward_hashed,
)

__all__ = [
    "CACHE_SCALE",
    "table1",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "scaling",
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
]

# Fallback cache-capacity scale factor for graphs outside the dataset
# registry (DESIGN.md §1: our graphs are ~10^3x smaller than the paper's).
CACHE_SCALE = 1024


def cache_scale_for(name: str) -> int:
    """Per-dataset cache scale: the ratio between the original dataset's
    CSX topology size (Table 7) and the stand-in's, so every replay sees
    the same relative cache capacity the paper's run saw."""
    spec = DATASETS.get(name)
    if spec is None or spec.paper_csx_gb <= 0:
        return CACHE_SCALE
    ours = load_dataset(name).nbytes_csx(include_symmetric=False)
    return max(1, int(round(spec.paper_csx_gb * 1e9 / ours)))

# The five systems of Table 5 mapped to our re-implementations.
SYSTEMS = {
    "BBTC": lambda g: count_triangles_block(g, num_blocks=8),
    "GGrnd": count_triangles_edge_iterator,
    "GAP": count_triangles_forward,
    "GBBS": count_triangles_forward_hashed,
    "Lotus": count_triangles_lotus,
}


# --------------------------------------------------------------------------
# memoised per-dataset artefacts
# --------------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def _system_run(name: str, sysname: str):
    """Memoised end-to-end wall-clock run of one system on one dataset
    (Table 5 and Figure 1 share these runs)."""
    return SYSTEMS[sysname](load_dataset(name))


@functools.lru_cache(maxsize=None)
def _oriented(name: str):
    return apply_degree_ordering(load_dataset(name))[0].orient_lower()


@functools.lru_cache(maxsize=None)
def _lotus(name: str):
    return build_lotus_graph(load_dataset(name))


@functools.lru_cache(maxsize=None)
def _replay(name: str, machine_name: str, algorithm: str):
    """Replay one algorithm's trace on one scaled machine; returns stats."""
    machine = MACHINES[machine_name].scaled(cache_scale_for(name))
    if algorithm == "forward":
        trace = forward_trace(_oriented(name))
    elif algorithm == "lotus":
        trace = lotus_trace(_lotus(name))
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    hierarchy = MemoryHierarchy(machine)
    hierarchy.access_lines(trace)
    return hierarchy.stats()


@functools.lru_cache(maxsize=None)
def _opcounts(name: str, algorithm: str):
    if algorithm == "forward":
        return forward_opcounts(_oriented(name))
    if algorithm == "lotus":
        return lotus_opcounts(_lotus(name))
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _modeled(name: str, machine_name: str, algorithm: str) -> float:
    machine = MACHINES[machine_name].scaled(cache_scale_for(name))
    cm = modeled_seconds(
        _opcounts(name, algorithm), _replay(name, machine_name, algorithm), machine
    )
    return cm.seconds_parallel


# --------------------------------------------------------------------------
# tables
# --------------------------------------------------------------------------
def table1(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Table 1: topological characteristics of hubs (top 1% by degree)."""
    rows = []
    for name in datasets:
        hc = hub_characteristics(load_dataset(name), hub_fraction=0.01)
        rows.append(
            {
                "dataset": name,
                "hub-to-hub %": hc.hub_to_hub_pct,
                "hub-to-nonhub %": hc.hub_to_nonhub_pct,
                "hub edges %": hc.hub_edges_pct,
                "nonhub edges %": hc.nonhub_edges_pct,
                "hub triangles %": hc.hub_triangles_pct,
                "relative density": hc.relative_density,
                "fruitless %": hc.fruitless_pct,
            }
        )
    avg = {
        "dataset": "Average",
        **{
            k: float(np.mean([r[k] for r in rows]))
            for k in rows[0]
            if k != "dataset"
        },
    }
    rows.append(avg)
    return ExperimentResult(
        "table1",
        "Topological characteristics of hubs (1% of vertices as hubs)",
        rows,
        paper_reference={
            "avg hub edges %": 72.9,
            "avg hub triangles %": 93.4,
            "avg relative density": 1809,
            "avg fruitless %": 53.3,
        },
        notes="synthetic stand-ins; shapes (hub dominance, dense hub core) "
        "are the reproduction target, not exact percentages",
    )


def table4(datasets: tuple[str, ...] = SMALL_SUITE + LARGE_SUITE) -> ExperimentResult:
    """Table 4: dataset inventory (|V|, |E|, triangles) of the stand-ins."""
    rows = []
    for name in datasets:
        g = load_dataset(name)
        spec = DATASETS[name]
        rows.append(
            {
                "dataset": name,
                "paper name": spec.paper_name,
                "type": spec.kind,
                "|V|": g.num_vertices,
                "|E|": g.num_edges,
                "triangles": count_triangles_lotus(g).triangles,
                "paper |V| (M)": spec.paper_vertices_m,
                "paper |E| (B)": spec.paper_edges_b,
            }
        )
    return ExperimentResult("table4", "Datasets (synthetic stand-ins)", rows)


def table5(
    datasets: tuple[str, ...] = SMALL_SUITE,
    systems: tuple[str, ...] = ("BBTC", "GGrnd", "GAP", "GBBS", "Lotus"),
) -> ExperimentResult:
    """Table 5: end-to-end TC times for the five systems.

    Reports (a) measured Python wall-clock of our re-implementations and
    (b) memsim-modelled seconds for Forward (GAP's algorithm) vs Lotus on
    each of the three machine models.  Speedup ordering and rough factors
    are the reproduction target (DESIGN.md §6).
    """
    rows = []
    for name in datasets:
        row: dict[str, object] = {"dataset": name}
        lotus_wall = None
        for sysname in systems:
            res = _system_run(name, sysname)
            row[f"{sysname} (s)"] = res.elapsed
            if sysname == "Lotus":
                lotus_wall = res.elapsed
        if lotus_wall:
            for sysname in systems:
                if sysname != "Lotus":
                    row[f"speedup vs {sysname}"] = row[f"{sysname} (s)"] / lotus_wall
        for mach in ("SkyLakeX", "Haswell", "Epyc"):
            fwd = _modeled(name, mach, "forward")
            lot = _modeled(name, mach, "lotus")
            row[f"{mach} modeled speedup"] = fwd / lot if lot else float("inf")
        rows.append(row)
    return ExperimentResult(
        "table5",
        "End-to-end TC execution times (wall-clock + modeled)",
        rows,
        paper_reference={
            "avg speedup vs BBTC": 19.3,
            "avg speedup vs GraphGrind": 5.5,
            "avg speedup vs GAP": 3.8,
            "avg speedup vs GBBS": 2.2,
        },
    )


def table6(datasets: tuple[str, ...] = LARGE_SUITE) -> ExperimentResult:
    """Table 6: GBBS vs Lotus on the large suite (Epyc model)."""
    rows = []
    for name in datasets:
        g = load_dataset(name)
        gbbs = count_triangles_forward_hashed(g)
        lotus = count_triangles_lotus(g)
        rows.append(
            {
                "dataset": name,
                "GBBS (s)": gbbs.elapsed,
                "Lotus (s)": lotus.elapsed,
                "wall speedup": gbbs.elapsed / lotus.elapsed,
                "Epyc modeled speedup": _modeled(name, "Epyc", "forward")
                / _modeled(name, "Epyc", "lotus"),
            }
        )
    return ExperimentResult(
        "table6",
        "Large graphs (>10B paper edges): GBBS vs Lotus on Epyc",
        rows,
        paper_reference={"avg speedup": 2.1},
    )


def table7(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Table 7: topology data size, CSX vs Lotus."""
    rows = []
    for name in datasets:
        g = load_dataset(name)
        lotus = _lotus(name)
        csx_edges = g.indices.dtype.itemsize * g.num_arcs
        csx = g.nbytes_csx()
        lot = lotus.nbytes_lotus()
        rows.append(
            {
                "dataset": name,
                "CSX edges (MB)": csx_edges / 1e6,
                "CSX (MB)": csx / 1e6,
                "Lotus (MB)": lot / 1e6,
                "growth %": 100.0 * (lot - csx) / csx,
            }
        )
    return ExperimentResult(
        "table7",
        "Size of topology data",
        rows,
        paper_reference={"avg growth %": -4.1},
        notes="the fixed 256MB H2H of the paper shrinks with our hub counts; "
        "the 2-byte HE saving and per-structure working sets carry over",
    )


def table8(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Table 8: H2H bit-array density and zero-cacheline fraction.

    Uses the paper's *many-hubs* regime (hub count ~ |V|/8 here, standing
    in for the fixed 64 K of multi-million-vertex graphs): the Table-8
    phenomenon — a sparse H2H whose set bits cluster into few cachelines —
    only appears when the hub set extends well past the densely
    interconnected top hubs.
    """
    rows = []
    for name in datasets:
        g = load_dataset(name)
        lotus = build_lotus_graph(
            g, LotusConfig(hub_count=max(256, g.num_vertices // 8))
        )
        rows.append(
            {
                "dataset": name,
                "H2H density %": 100.0 * lotus.h2h.density(),
                "zero cachelines %": 100.0 * lotus.h2h.zero_cacheline_fraction(),
            }
        )
    return ExperimentResult(
        "table8",
        "Lotus H2H bit array characteristics (many-hubs regime)",
        rows,
        paper_reference={
            "density range %": [0.15, 15.26],
            "web graph zero-cachelines %": [74.6, 95.2],
            "social network zero-cachelines %": [5.7, 62.5],
        },
        notes="R-MAT stand-ins lack the crawler ID locality (LLP ordering) "
        "of the paper's web graphs, so the web-vs-social contrast in "
        "zero-cachelines is weaker here (see EXPERIMENTS.md)",
    )


def table9(
    datasets: tuple[str, ...] = ("Twtr10", "TwtrMpi", "SK", "WbCc", "UKDls"),
    threads: int = 32,
) -> ExperimentResult:
    """Table 9: average thread idle time, edge-balanced vs squared tiling.

    Partition counts are 2*threads for both policies — the paper's
    256*threads edge-balanced split is tuned to billion-edge graphs and
    over-decomposes the scaled stand-ins (DESIGN.md §1).
    """
    rows = []
    for name in datasets:
        lotus = _lotus(name)
        sq = tiles_for_phase1(
            lotus.he, partitions=2 * threads, policy="squared", degree_threshold=64
        )
        eb = edge_balanced_global_tiles(lotus.he, 2 * threads)
        rows.append(
            {
                "dataset": name,
                "edge balanced idle %": idle_time_pct(eb, threads),
                "squared tiling idle %": idle_time_pct(sq, threads),
            }
        )
    return ExperimentResult(
        "table9",
        f"Average idle time ({threads} threads)",
        rows,
        paper_reference={
            "edge balanced idle % range": [13.6, 83.3],
            "squared tiling idle % range": [0.7, 3.3],
        },
    )


def scaling(
    datasets: tuple[str, ...] = ("LJGrp", "Twtr10", "EU15"),
    workers: tuple[int, ...] = (1, 2, 4),
) -> ExperimentResult:
    """Phase-1 strong scaling across execution backends.

    For each dataset and worker count: the simulated work-stealing
    speedup (deterministic, from exact tile costs) and the measured
    process-backend wall time, with a bit-identity check against the
    sequential phase.  Complements Table 9, which reports idle time for
    the same tiling.
    """
    import time as _time

    from repro.core.count import count_hhh_hhn
    from repro.parallel.procpool import count_hhh_hhn_processes
    from repro.parallel.scheduler import simulate_schedule

    rows = []
    for name in datasets:
        lotus = _lotus(name)
        seq = count_hhh_hhn(lotus)
        row: dict = {"dataset": name, "phase1 hits": sum(seq)}
        for w in workers:
            tiles = tiles_for_phase1(lotus.he, partitions=2 * w)
            row[f"sim speedup w={w}"] = simulate_schedule(tiles, w).speedup
            started = _time.perf_counter()
            got = count_hhh_hhn_processes(lotus, workers=w)
            row[f"proc seconds w={w}"] = _time.perf_counter() - started
            if got != seq:  # pragma: no cover - correctness canary
                raise AssertionError(
                    f"process backend diverged on {name} at workers={w}"
                )
        rows.append(row)
    return ExperimentResult(
        "scaling",
        f"Phase-1 scaling, process backend (workers {list(workers)})",
        rows,
        paper_reference={
            "note": "paper reports 32-thread pthread scaling; stand-ins "
                    "record simulated work-stealing speedup + measured "
                    "process-pool wall time"
        },
    )


# --------------------------------------------------------------------------
# figures
# --------------------------------------------------------------------------
def fig1(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Figure 1: average end-to-end TC rate (edges/second) per system."""
    sums: dict[str, list[float]] = {s: [] for s in SYSTEMS}
    for name in datasets:
        g = load_dataset(name)
        for sysname in SYSTEMS:
            res = _system_run(name, sysname)
            sums[sysname].append(res.rate_edges_per_second(g.num_edges))
    rows = [
        {"system": s, "avg TC rate (edges/s)": float(np.mean(r))}
        for s, r in sums.items()
    ]
    return ExperimentResult(
        "fig1",
        "Average TC rate, end-to-end (higher is better)",
        rows,
        paper_reference={"ordering": "Lotus > GBBS ~ GAP > GraphGrind > BBTC"},
    )


def fig4(datasets: tuple[str, ...] = SMALL_SUITE, machine: str = "SkyLakeX") -> ExperimentResult:
    """Figure 4: LLC misses (a) and DTLB misses (b), Lotus vs Forward."""
    rows = []
    for name in datasets:
        sf = _replay(name, machine, "forward")
        sl = _replay(name, machine, "lotus")
        rows.append(
            {
                "dataset": name,
                "Forward LLC misses": sf.llc_misses,
                "Lotus LLC misses": sl.llc_misses,
                "LLC reduction x": sf.llc_misses / max(sl.llc_misses, 1),
                "Forward DTLB misses": sf.dtlb_misses,
                "Lotus DTLB misses": sl.dtlb_misses,
                "DTLB reduction x": sf.dtlb_misses / max(sl.dtlb_misses, 1),
            }
        )
    return ExperimentResult(
        "fig4",
        f"Hardware cache events, Lotus vs Forward [{machine} model, per-dataset scale]",
        rows,
        paper_reference={
            "avg LLC reduction x": 2.1,
            "max LLC reduction x": 4.0,
            "avg DTLB reduction x": 34.6,
        },
        notes="DTLB reduction magnitude is bounded by our smaller working "
        "sets; the direction and LLC factors are the reproduction target",
    )


def fig5(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Figure 5: memory accesses, instructions, branch mispredictions."""
    rows = []
    for name in datasets:
        f = _opcounts(name, "forward")
        l = _opcounts(name, "lotus")
        rows.append(
            {
                "dataset": name,
                "mem access reduction x": f.memory_accesses / l.memory_accesses,
                "instruction reduction x": f.instructions / l.instructions,
                "branch-miss reduction x": f.branch_mispredicts
                / max(l.branch_mispredicts, 1e-9),
            }
        )
    return ExperimentResult(
        "fig5",
        "Modelled hardware events, Forward / Lotus ratios",
        rows,
        paper_reference={
            "avg mem access reduction x": 1.5,
            "avg instruction reduction x": 1.7,
            "avg branch-miss reduction x": 2.4,
        },
    )


def fig6(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Figure 6: Lotus execution-time breakdown."""
    rows = []
    for name in datasets:
        res = count_triangles_lotus(load_dataset(name))
        fr = {k: v / res.elapsed for k, v in res.phases.items()}
        rows.append(
            {
                "dataset": name,
                "total (s)": res.elapsed,
                "preprocess %": 100 * fr.get("preprocess", 0.0),
                "hhh+hhn %": 100 * fr.get("hhh+hhn", 0.0),
                "hnn %": 100 * fr.get("hnn", 0.0),
                "nnn %": 100 * fr.get("nnn", 0.0),
            }
        )
    return ExperimentResult(
        "fig6",
        "Lotus execution breakdown",
        rows,
        paper_reference={
            "avg preprocess % of total": 19.4,
            "avg nnn % of counting": 40.4,
        },
    )


def fig7(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Figure 7: hub vs non-hub triangles counted by Lotus."""
    rows = []
    for name in datasets:
        counts = count_triangles_lotus(load_dataset(name)).extra["counts"]
        rows.append(
            {
                "dataset": name,
                "hub triangles": counts.hub,
                "non-hub triangles": counts.nnn,
                "hub %": 100.0 * counts.hub_fraction(),
            }
        )
    rows.append(
        {
            "dataset": "Average",
            "hub %": float(np.mean([r["hub %"] for r in rows])),
        }
    )
    return ExperimentResult(
        "fig7",
        "Hub vs non-hub triangles in Lotus",
        rows,
        paper_reference={"avg hub triangles %": 68.9},
    )


def fig8(datasets: tuple[str, ...] = SMALL_SUITE) -> ExperimentResult:
    """Figure 8: percentage of edges in HE vs NHE sub-graphs."""
    rows = []
    for name in datasets:
        lotus = _lotus(name)
        rows.append(
            {
                "dataset": name,
                "HE edges %": 100.0 * lotus.hub_edge_fraction(),
                "NHE edges %": 100.0 * (1 - lotus.hub_edge_fraction()),
            }
        )
    rows.append(
        {
            "dataset": "Average",
            "HE edges %": float(np.mean([r["HE edges %"] for r in rows])),
        }
    )
    return ExperimentResult(
        "fig8",
        "Edge split between HE and NHE",
        rows,
        paper_reference={"avg HE edges %": 50.1, "Friendster HE edges %": 7.6},
    )


def fig9(dataset: str = "Twtr10", points: int = 12) -> ExperimentResult:
    """Figure 9: cumulative access share of the most-accessed H2H cachelines."""
    lotus = _lotus(dataset)
    lines = h2h_access_lines(lotus)
    if lines.size == 0:
        return ExperimentResult("fig9", "H2H cacheline access concentration", [])
    freq = np.bincount(lines)
    freq = np.sort(freq[freq > 0])[::-1]
    cumulative = np.cumsum(freq) / freq.sum()
    total_lines = (lotus.h2h.data.size + 63) // 64
    ks = np.unique(
        np.logspace(0, np.log10(freq.size), points).astype(np.int64)
    )
    rows = [
        {
            "top cachelines": int(k),
            "% of all H2H lines": 100.0 * k / total_lines,
            "cumulative access %": 100.0 * float(cumulative[k - 1]),
        }
        for k in ks
    ]
    return ExperimentResult(
        "fig9",
        f"Cumulative H2H accesses vs hottest cachelines [{dataset}]",
        rows,
        paper_reference={
            "claim": "1M cachelines (64MB, ~25% of H2H) satisfy >90% of accesses"
        },
    )
