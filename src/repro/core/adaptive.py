"""Adaptive algorithm selection and recursive LOTUS.

Section 5.5: graphs that are not skewed enough (e.g. Friendster) gain
little from the hub machinery, so production use should check the degree
distribution first and fall back to the Forward algorithm —
:func:`count_triangles_adaptive` implements that dispatch using the
GAP-style sampling detector from :mod:`repro.graph.degree`.

Section 7 / 5.5(1): social networks with many low-degree hubs can apply
LOTUS *recursively*, splitting the NHE sub-graph into its own
H2H/HE/NHE components — :func:`count_triangles_lotus_recursive`.
"""

from __future__ import annotations

import numpy as np

from repro.core.count import count_triangles_lotus, count_hhh_hhn, count_hnn
from repro.core.structure import LotusConfig, build_lotus_graph
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.degree import is_skewed
from repro.obs import root_span, timed_phase
from repro.tc.forward import count_triangles_forward
from repro.tc.result import TCResult
from repro.util.timer import PhaseTimer

__all__ = ["count_triangles_adaptive", "count_triangles_lotus_recursive"]


def count_triangles_adaptive(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    skew_threshold: float = 3.0,
    seed: int | None = 0,
) -> TCResult:
    """LOTUS when the degree distribution is skewed, Forward otherwise.

    The detector samples vertex degrees and compares the mean to the
    sampled median (Section 5.5); the chosen algorithm is recorded in the
    result's ``algorithm`` field.
    """
    with root_span("adaptive") as span:
        skewed = is_skewed(graph, threshold=skew_threshold, seed=seed)
        if skewed:
            result = count_triangles_lotus(graph, config)
            result.extra["dispatch"] = "lotus"
        else:
            result = count_triangles_forward(graph)
            result.extra["dispatch"] = "forward-fallback"
        span.set("dispatch", result.extra["dispatch"])
        span.set("triangles", result.triangles)
    return result


def _nhe_as_graph(nhe_indptr: np.ndarray, nhe_indices: np.ndarray, hub_count: int) -> CSRGraph:
    """Re-materialise the NHE sub-graph as a standalone undirected graph on
    the non-hub vertices (IDs shifted down by ``hub_count``)."""
    n = nhe_indptr.size - 1
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(nhe_indptr))
    dst = nhe_indices.astype(np.int64, copy=False)
    # non-hub vertices occupy IDs [hub_count, n); compact them
    src = src - hub_count
    dst = dst - hub_count
    keep = src >= 0
    edges = np.column_stack([src[keep], dst[keep]])
    return from_edges(edges, num_vertices=max(n - hub_count, 0))


def count_triangles_lotus_recursive(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    max_depth: int = 3,
    min_edges: int = 1024,
    skew_threshold: float = 3.0,
) -> TCResult:
    """Recursive LOTUS (Section 7): phases 1-2 run at every level; the NNN
    phase re-applies LOTUS to the NHE sub-graph while it remains large and
    skewed, so each level's random accesses target a fresh small H2H.

    Recursion stops at ``max_depth``, when the NHE sub-graph has fewer
    than ``min_edges`` edges, or when it is no longer skewed; the
    remainder is counted with the plain NNN kernel (via Forward on the
    sub-graph, which is the identical computation).
    """
    timer = PhaseTimer()
    total = 0
    depth = 0
    levels: list[dict[str, int]] = []
    current = graph
    with root_span("lotus-recursive") as span:
        while True:
            lotus = build_lotus_graph(current, config, timer=timer)
            with timed_phase(timer, f"level{depth}:hhh+hhn"):
                hhh, hhn = count_hhh_hhn(lotus)
            with timed_phase(timer, f"level{depth}:hnn"):
                hnn = count_hnn(lotus)
            total += hhh + hhn + hnn
            levels.append({"hhh": hhh, "hhn": hhn, "hnn": hnn})
            nhe_graph = _nhe_as_graph(
                lotus.nhe.indptr, lotus.nhe.indices, lotus.hub_count
            )
            depth += 1
            recurse = (
                depth < max_depth
                and nhe_graph.num_edges >= min_edges
                and is_skewed(nhe_graph, threshold=skew_threshold)
            )
            if not recurse:
                with timed_phase(timer, f"level{depth}:nnn"):
                    rest = count_triangles_forward(nhe_graph, degree_order=False)
                total += rest.triangles
                levels.append({"nnn": rest.triangles})
                break
            current = nhe_graph
        span.set("depth", depth)
        span.set("triangles", total)
    return TCResult(
        algorithm=f"lotus-recursive(depth={depth})",
        triangles=total,
        elapsed=timer.total,
        phases=dict(timer.phases),
        extra={"levels": levels, "depth": depth},
    )
