"""Squared Edge Tiling (Section 4.6) and the edge-balanced comparator.

In phase 1 the work a neighbour ``h1`` performs is proportional to its
offset in the neighbour list (it pairs with all earlier neighbours), so
splitting a list into equal-*length* chunks produces unbalanced tiles.
Squared Edge Tiling places the cut for work-fraction ``f`` at offset
``i ~= |N_v| * sqrt(f)``, giving tiles of equal *pair* work.

The module also provides the generic edge-balanced tiling used by the
paper's comparator policy (Table 9) and exact per-tile work accounting
consumed by the scheduler simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import OrientedGraph

__all__ = [
    "Tile",
    "squared_edge_tiling",
    "edge_balanced_tiling",
    "tile_pair_work",
    "tiles_for_phase1",
]


@dataclass(frozen=True)
class Tile:
    """A unit of schedulable work: a slice of one vertex's neighbour list.

    ``vertex`` owns the list; the tile covers neighbour offsets
    ``[start, stop)``.  ``work`` is the exact cost in pair comparisons for
    phase-1 tiles (sum of offsets) or in edges for edge-balanced tiles.
    """

    vertex: int
    start: int
    stop: int
    work: int


def tile_pair_work(start: int, stop: int) -> int:
    """Exact pair-work of neighbour offsets [start, stop): each offset
    ``i`` pairs with the ``i`` earlier neighbours, so the total is
    ``sum_{i=start}^{stop-1} i``."""
    if stop <= start:
        return 0
    return (stop * (stop - 1) - start * (start - 1)) // 2


def squared_edge_tiling(degree: int, partitions: int) -> np.ndarray:
    """Cut offsets for one neighbour list, equalising *pair* work.

    Returns ``partitions + 1`` boundaries ``b_0=0 <= ... <= b_p=degree``
    where boundary ``k`` sits at ``round(degree * sqrt(k/p))`` — the
    closed form derived in Section 4.6 (the paper's example: degree 100,
    p = 5 -> 0, 45, 63, 77, 89, 100).
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if degree < 0:
        raise ValueError("degree must be >= 0")
    k = np.arange(partitions + 1, dtype=np.float64)
    bounds = np.floor(degree * np.sqrt(k / partitions) + 0.5).astype(np.int64)
    bounds[0] = 0
    bounds[-1] = degree
    return np.maximum.accumulate(bounds)


def edge_balanced_tiling(degree: int, partitions: int) -> np.ndarray:
    """Equal-*length* cut offsets — the comparator policy of Table 9."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if degree < 0:
        raise ValueError("degree must be >= 0")
    return np.linspace(0, degree, partitions + 1).astype(np.int64)


def tiles_for_phase1(
    he: OrientedGraph,
    partitions: int,
    policy: str = "squared",
    degree_threshold: int = 512,
) -> list[Tile]:
    """Tile the phase-1 (HHH & HHN) workload of the HE sub-graph.

    Lists longer than ``degree_threshold`` are split into ``partitions``
    tiles under the chosen ``policy`` ("squared" or "edge_balanced");
    shorter lists become single tiles.  The paper applies squared edge
    tiling above degree 512 with ``p = 2 * #threads`` (Section 5.8).
    """
    if policy not in ("squared", "edge_balanced"):
        raise ValueError(f"unknown policy {policy!r}")
    cut = squared_edge_tiling if policy == "squared" else edge_balanced_tiling
    tiles: list[Tile] = []
    degrees = he.degrees()
    for v in range(he.num_vertices):
        d = int(degrees[v])
        if d < 2:
            continue
        if d <= degree_threshold:
            tiles.append(Tile(v, 0, d, tile_pair_work(0, d)))
            continue
        bounds = cut(d, partitions)
        for a, b in zip(bounds[:-1], bounds[1:]):
            if b > a:
                tiles.append(Tile(v, int(a), int(b), tile_pair_work(int(a), int(b))))
    return tiles
