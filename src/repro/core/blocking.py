"""Blocked HNN counting — the paper's second future-work item (Section 7).

"Locality of HNN may be further improved by applying blocking strategies
[36] to limit the domain of random accesses."  The HNN phase's random
accesses go to the HE rows of the non-hub neighbours ``u``; processing
the NHE arcs grouped by *ranges of u* confines those accesses to one
narrow address window at a time, so the window's rows stay cached while
every arc that needs them is served.

:func:`count_hnn_blocked` produces the identical HNN count (it is a pure
reordering of a commutative reduction); :func:`phase2_blocked_trace`
emits the reordered access stream so the memory simulator can quantify
the improvement (see ``benchmarks/bench_ext_blocking.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.structure import LotusGraph
from repro.memsim.layout import MemoryLayout
from repro.memsim.regions import REGION_HE, REGION_NHE
from repro.memsim.trace import (
    _arc_prefix_segments,
    _interleave,
    _merge_touched_per_arc,
    _oriented_arcs,
    _row_stream_segments,
    lotus_layout,
)
from repro.tc.intersect import batch_pairwise_counts

__all__ = ["blocked_arc_order", "count_hnn_blocked", "phase2_blocked_trace"]


def blocked_arc_order(lotus: LotusGraph, block_size: int) -> np.ndarray:
    """Permutation of the NHE arcs grouped by blocks of the neighbour ``u``.

    Within a block, arcs keep their (v-major) order so the streaming side
    stays as sequential as possible.
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    blocks = dst // block_size
    return np.argsort(blocks, kind="stable")


def count_hnn_blocked(lotus: LotusGraph, block_size: int = 4096) -> int:
    """HNN count with u-blocked arc processing; equals ``count_hnn``."""
    nhe_indptr = lotus.nhe.indptr
    src = _oriented_arcs(nhe_indptr)
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    order = blocked_arc_order(lotus, block_size)
    return batch_pairwise_counts(
        lotus.he.indptr,
        lotus.he.indices,
        lotus.he.indptr,
        lotus.he.indices,
        src[order],
        dst[order],
    )


def phase2_blocked_trace(
    lotus: LotusGraph,
    block_size: int = 4096,
    layout: MemoryLayout | None = None,
) -> np.ndarray:
    """Phase-2 access stream under u-blocking.

    For every (block, v) group: stream the group's slice of ``NHE.N_v``
    and the querying row ``HE.N_v``, then read the merge-touched prefix
    of each in-block neighbour's HE row.  Compared to the unblocked
    trace, the random accesses of consecutive groups land in one
    ``block_size``-row window.
    """
    layout = layout or lotus_layout(lotus)
    he_region = layout[REGION_HE]
    nhe_region = layout[REGION_NHE]
    he_indptr = lotus.he.indptr
    nhe_indptr = lotus.nhe.indptr
    src = _oriented_arcs(nhe_indptr)
    dst = lotus.nhe.indices.astype(np.int64, copy=False)
    order = blocked_arc_order(lotus, block_size)
    src, dst = src[order], dst[order]
    arc_pos = np.flatnonzero(
        np.r_[True, (src[1:] != src[:-1]) | (dst[1:] // block_size != dst[:-1] // block_size)]
    )
    # groups of consecutive arcs sharing (block, v); treat each group as a
    # pseudo-vertex with two stream segments (its NHE slice + HE.N_v)
    group_ends = np.r_[arc_pos[1:], src.size]
    group_src = src[arc_pos]
    group_arc_indptr = np.r_[arc_pos, src.size].astype(np.int64)

    touched = _merge_touched_per_arc(he_indptr, lotus.he.indices, src, dst)
    arc_starts, arc_lens = _arc_prefix_segments(he_region, he_indptr, dst, touched)

    # stream segment 1: the group's NHE slice (approximated by its arcs'
    # positions in the NHE indices array — contiguous within a group)
    nhe_positions = nhe_indptr[group_src]  # start of v's NHE row
    s1_starts = nhe_region.element_line(nhe_positions)
    s1_lens = np.maximum((group_ends - arc_pos) * nhe_region.element_bytes // 64, 1)
    # stream segment 2: HE.N_v of the group's v
    he_starts_v = he_indptr[group_src]
    he_lens_v = he_indptr[group_src + 1] - he_starts_v
    s2_first = he_region.element_line(he_starts_v)
    s2_last = he_region.element_line(np.maximum(he_starts_v + he_lens_v - 1, he_starts_v))
    s2_lens = np.where(he_lens_v > 0, s2_last - s2_first + 1, 0)

    return _interleave(
        [s1_starts, s2_first], [s1_lens, s2_lens], group_arc_indptr, arc_starts, arc_lens
    )
