"""The Lotus graph structure and preprocessing (Algorithm 2, Section 4.2-4.3).

The structure consists of:

* ``hub_count`` — the paper fixes 64 K (2^16) hubs; we default to
  ``min(2^16, |V| // 64)`` because the synthetic stand-ins are smaller
  than the paper's graphs (see DESIGN.md §6) — the constant is reached
  for large |V| and is fully configurable;
* **H2H** — triangular bit array over hub pairs;
* **HE** — CSX sub-graph of *hub* neighbours ``h < v`` of every vertex,
  one 16-bit ID per edge (hub IDs fit in 16 bits by construction);
* **NHE** — CSX sub-graph of *non-hub* neighbours ``u < v``, 32-bit IDs.

Relabeling gives the first consecutive IDs to the top ~10 % of vertices
by degree (hubs first), preserving the original order elsewhere
(Section 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bitarray import TriangularBitArray
from repro.graph.csr import CSRGraph, OrientedGraph
from repro.graph.reorder import lotus_relabeling_array
from repro.obs import timed_phase
from repro.util.timer import PhaseTimer

__all__ = ["LotusConfig", "LotusGraph", "build_lotus_graph"]

PAPER_HUB_COUNT = 1 << 16  # 64 K hubs (Section 4.2)


@dataclass(frozen=True)
class LotusConfig:
    """Tunables of the Lotus preprocessing.

    ``hub_count=None`` selects ``min(2^16, |V| // 64)``; pass
    ``PAPER_HUB_COUNT`` explicitly to force the paper's constant.
    ``head_fraction`` is the share of high-degree vertices pulled to the
    front of the ID space (the paper uses 10 %).
    """

    hub_count: int | None = None
    head_fraction: float = 0.10

    def resolve_hub_count(self, num_vertices: int) -> int:
        if self.hub_count is not None:
            if self.hub_count < 1:
                raise ValueError("hub_count must be >= 1")
            return min(int(self.hub_count), max(num_vertices, 1))
        return max(1, min(PAPER_HUB_COUNT, num_vertices // 64))


@dataclass
class LotusGraph:
    """Output of Lotus preprocessing (Algorithm 2).

    ``he`` and ``nhe`` are oriented CSX structures over the *relabeled*
    vertex IDs; ``he.indices`` is ``uint16`` when ``hub_count <= 2^16``.
    ``ra`` maps original ID -> new ID for answering queries about the
    input graph.
    """

    hub_count: int
    h2h: TriangularBitArray
    he: OrientedGraph
    nhe: OrientedGraph
    ra: np.ndarray
    num_vertices: int
    num_edges: int
    config: LotusConfig = field(default_factory=LotusConfig)

    @property
    def hub_edges(self) -> int:
        """Edges with at least one hub endpoint (= |HE| arcs)."""
        return self.he.num_edges

    @property
    def non_hub_edges(self) -> int:
        """Edges between two non-hubs (= |NHE| arcs)."""
        return self.nhe.num_edges

    def hub_edge_fraction(self) -> float:
        """Fraction of all edges stored in HE (Figure 8)."""
        total = self.hub_edges + self.non_hub_edges
        return self.hub_edges / total if total else 0.0

    def nbytes_lotus(self) -> int:
        """Total topology bytes of the Lotus structure (Table 7):
        two index arrays of 8(|V|+1) bytes, the H2H bit array, 2 bytes per
        HE edge and 4 bytes per NHE edge."""
        index_bytes = 2 * 8 * (self.num_vertices + 1)
        return (
            index_bytes
            + self.h2h.nbytes
            + self.he.indices.dtype.itemsize * self.he.num_edges
            + self.nhe.indices.dtype.itemsize * self.nhe.num_edges
        )

    def to_shared(self):
        """Copy the whole Lotus structure into one shared-memory segment.

        Returns a :class:`repro.util.shm.SharedArrays` handle; its
        picklable ``manifest`` rebuilds the structure zero-copy in worker
        processes via :meth:`from_shared` (the process backend's
        substrate).  The caller owns the segment.
        """
        from repro.util.shm import share_arrays

        return share_arrays(
            {
                "h2h_data": self.h2h.data,
                "he_indptr": self.he.indptr,
                "he_indices": self.he.indices,
                "nhe_indptr": self.nhe.indptr,
                "nhe_indices": self.nhe.indices,
                "ra": self.ra,
            },
            meta={
                "kind": "lotus-graph",
                "hub_count": int(self.hub_count),
                "h2h_n": int(self.h2h.n),
                "num_vertices": int(self.num_vertices),
                "num_edges": int(self.num_edges),
                "config_hub_count": self.config.hub_count,
                "config_head_fraction": float(self.config.head_fraction),
            },
        )

    @classmethod
    def from_shared(cls, manifest: dict) -> "tuple[LotusGraph, object]":
        """Attach a segment created by :meth:`to_shared`.

        Returns ``(lotus, handle)`` where every array of ``lotus`` is a
        zero-copy view into the shared segment.
        """
        from repro.util.shm import attach_arrays

        handle = attach_arrays(manifest)
        meta = handle.meta
        arrays = handle.arrays
        lotus = cls(
            hub_count=int(meta["hub_count"]),
            h2h=TriangularBitArray.from_data(int(meta["h2h_n"]), arrays["h2h_data"]),
            he=OrientedGraph(arrays["he_indptr"], arrays["he_indices"]),
            nhe=OrientedGraph(arrays["nhe_indptr"], arrays["nhe_indices"]),
            ra=arrays["ra"],
            num_vertices=int(meta["num_vertices"]),
            num_edges=int(meta["num_edges"]),
            config=LotusConfig(
                hub_count=meta["config_hub_count"],
                head_fraction=meta["config_head_fraction"],
            ),
        )
        return lotus, handle

    def validate(self) -> None:
        """Structural invariants: HE rows contain only hub IDs < v, NHE rows
        only non-hub IDs < v; HE + NHE edges partition the oriented graph;
        H2H bits match the hub-hub arcs of HE."""
        hc = self.hub_count
        n = self.num_vertices
        if self.he.num_vertices != n or self.nhe.num_vertices != n:
            raise ValueError("sub-graph vertex count mismatch")
        if self.hub_edges + self.non_hub_edges != self.num_edges:
            raise ValueError("HE/NHE do not partition the edge set")
        for v in range(n):
            he_row = self.he.neighbors(v)
            if he_row.size:
                mx = int(he_row.max())
                if mx >= hc or mx >= v:
                    raise ValueError(f"HE row {v} contains a non-hub or >= v ID")
            nhe_row = self.nhe.neighbors(v)
            if nhe_row.size:
                if int(nhe_row.min()) < hc:
                    raise ValueError(f"NHE row {v} contains a hub ID")
                if int(nhe_row.max()) >= v:
                    raise ValueError(f"NHE row {v} contains an ID >= v")
        # every hub-hub arc must be present in H2H and vice versa
        expected = 0
        for h1 in range(min(hc, n)):
            row = self.he.neighbors(h1).astype(np.int64, copy=False)
            expected += row.size
            if row.size and not self.h2h.test_pairs(np.full(row.size, h1), row).all():
                raise ValueError(f"H2H missing bits for hub {h1}")
        if self.h2h.count_set() != expected:
            raise ValueError("H2H contains extra bits")


def build_lotus_graph(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    timer: PhaseTimer | None = None,
) -> LotusGraph:
    """Lotus preprocessing (Algorithm 2), vectorised.

    Steps: build the relabeling array; relabel all arcs; keep only arcs
    ``u_new < v_new`` (symmetric-edge elision); split them into HE
    (``u_new`` is a hub) and NHE; populate H2H from the hub-hub subset.
    """
    config = config or LotusConfig()
    timer = timer or PhaseTimer()
    n = graph.num_vertices
    hub_count = config.resolve_hub_count(n)

    with timed_phase(timer, "preprocess") as span:
        ra = lotus_relabeling_array(graph, config.head_fraction)
        # relabel every stored arc and orient: keep u_new < v_new
        old_src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
        new_src = ra[old_src]
        new_dst = ra[graph.indices.astype(np.int64, copy=False)]
        keep = new_dst < new_src
        src = new_src[keep]
        dst = new_dst[keep]
        # sort arcs by (src, dst) so each row comes out sorted
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]

        is_hub_dst = dst < hub_count
        he_src, he_dst = src[is_hub_dst], dst[is_hub_dst]
        nhe_src, nhe_dst = src[~is_hub_dst], dst[~is_hub_dst]

        he_dtype = np.uint16 if hub_count <= (1 << 16) else np.uint32
        he = OrientedGraph(
            _rows_to_indptr(he_src, n), he_dst.astype(he_dtype)
        )
        nhe = OrientedGraph(
            _rows_to_indptr(nhe_src, n), nhe_dst.astype(np.uint32)
        )

        h2h = TriangularBitArray(hub_count)
        hub_hub = he_src < hub_count
        if hub_hub.any():
            h2h.set_pairs(he_src[hub_hub], he_dst[hub_hub])

        if span.enabled:
            span.set("arcs_relabeled", int(old_src.size))
            span.set("hub_count", hub_count)
            span.set("he_edges", int(he_dst.size))
            span.set("nhe_edges", int(nhe_dst.size))
            span.set("h2h_edges", int(np.count_nonzero(hub_hub)))
            span.set(
                "bytes_built",
                int(
                    h2h.nbytes
                    + he.indices.nbytes + he.indptr.nbytes
                    + nhe.indices.nbytes + nhe.indptr.nbytes
                ),
            )

    return LotusGraph(
        hub_count=hub_count,
        h2h=h2h,
        he=he,
        nhe=nhe,
        ra=ra,
        num_vertices=n,
        num_edges=graph.num_edges,
        config=config,
    )


def _rows_to_indptr(src: np.ndarray, n: int) -> np.ndarray:
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr
