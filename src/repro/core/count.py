"""Counting triangles in Lotus (Algorithm 3, Section 4.4).

Three phases, each with a bespoke data structure for its random accesses
(Table 2):

1. **HHH & HHN** — stream each vertex's hub-neighbour list from HE and
   test all pairs against the H2H bit array (random accesses confined to
   <= 256 MB of bits);
2. **HNN** — for each non-hub vertex ``v`` and non-hub neighbour ``u``,
   intersect the (16-bit) HE rows of ``u`` and ``v``;
3. **NNN** — Forward-style merge intersections inside NHE only, never
   touching hub edges (the Section 3.3 pruning).

Each phase is exposed separately so the benchmarks can time the Figure 6
breakdown; :func:`count_triangles_lotus` is the end-to-end entry point
(preprocessing included, as the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.structure import LotusConfig, LotusGraph, build_lotus_graph
from repro.graph.csr import CSRGraph
from repro.obs import root_span, timed_phase
from repro.tc.intersect import batch_intersect_counts, batch_pairwise_counts
from repro.tc.result import TCResult
from repro.util.arrays import concat_ranges
from repro.util.timer import PhaseTimer

__all__ = [
    "LotusCounts",
    "count_hhh_hhn",
    "count_hnn",
    "count_nnn",
    "lotus_count_from_structure",
    "count_triangles_lotus",
]

# pair-generation chunk bound: caps peak memory of the phase-1 pair blocks
_PAIR_CHUNK = 1 << 22


@dataclass(frozen=True)
class LotusCounts:
    """Per-type triangle counts (the Figure 7 decomposition)."""

    hhh: int
    hhn: int
    hnn: int
    nnn: int

    @property
    def hub(self) -> int:
        """Triangles containing at least one hub (HHH + HHN + HNN)."""
        return self.hhh + self.hhn + self.hnn

    @property
    def total(self) -> int:
        return self.hub + self.nnn

    def hub_fraction(self) -> float:
        return self.hub / self.total if self.total else 0.0


def _batched_pair_count(lotus: LotusGraph, rows: np.ndarray) -> int:
    """All-pairs H2H probes for many short neighbour lists at once.

    Pairs across all ``rows`` are enumerated in one flat ordinal space and
    decoded with the closed-form triangular inverse
    ``i = floor((1 + sqrt(1 + 8p)) / 2)``, ``j = p - i(i-1)/2`` — no
    Python loop over vertices.  ``rows`` must each have
    ``<= _PAIR_CHUNK`` pairs; bigger rows go through
    :func:`_count_pairs_against_h2h`.
    """
    he = lotus.he
    deg = (he.indptr[rows + 1] - he.indptr[rows]).astype(np.int64)
    pair_counts = deg * (deg - 1) // 2
    total = 0
    # group rows into chunks of ~_PAIR_CHUNK total pairs
    cum = np.cumsum(pair_counts)
    start = 0
    while start < rows.size:
        base = cum[start] - pair_counts[start]
        stop = int(np.searchsorted(cum, base + _PAIR_CHUNK, side="left")) + 1
        stop = min(max(stop, start + 1), rows.size)
        sel = slice(start, stop)
        counts = pair_counts[sel]
        p = concat_ranges(np.zeros(stop - start, dtype=np.int64), counts)
        i = ((1.0 + np.sqrt(1.0 + 8.0 * p)) / 2.0).astype(np.int64)
        # guard against float rounding at triangular boundaries
        tri = i * (i - 1) // 2
        over = tri > p
        i[over] -= 1
        tri[over] = i[over] * (i[over] - 1) // 2
        j = p - tri
        under = j >= i
        i[under] += 1
        tri[under] = i[under] * (i[under] - 1) // 2
        j[under] = p[under] - tri[under]
        row_start = np.repeat(he.indptr[rows[sel]], counts)
        h1 = he.indices[row_start + i].astype(np.int64, copy=False)
        h2 = he.indices[row_start + j].astype(np.int64, copy=False)
        total += int(np.count_nonzero(lotus.h2h.test_pairs(h1, h2)))
        start = stop
    return total


def _count_pairs_against_h2h(lotus: LotusGraph, v: int) -> int:
    """All-pairs H2H probes for one vertex's hub-neighbour list
    (Algorithm 3 lines 3-5), chunked to bound memory."""
    hs = lotus.he.neighbors(v).astype(np.int64, copy=False)
    length = hs.size
    if length < 2:
        return 0
    total = 0
    # pairs (h1 = hs[i], h2 = hs[j<i]); generate in blocks of rows i
    i = 1
    while i < length:
        # choose a row block [i, j) with ~_PAIR_CHUNK pairs
        j = i
        pairs = 0
        while j < length and pairs + j < _PAIR_CHUNK:
            pairs += j
            j += 1
        rows = np.arange(i, j, dtype=np.int64)
        h1 = np.repeat(hs[rows], rows)
        h2 = hs[concat_ranges(np.zeros(rows.size, dtype=np.int64), rows)]
        total += int(np.count_nonzero(lotus.h2h.test_pairs(h1, h2)))
        i = j
    return total


def count_hhh_hhn(lotus: LotusGraph) -> tuple[int, int]:
    """Phase 1: triangles with >= 2 hubs.  Returns ``(hhh, hhn)``.

    A pair (h1, h2) of hub neighbours of ``v`` forms a triangle iff
    ``H2H.isSet(h1, h2)``; it is HHH when ``v`` itself is a hub, HHN
    otherwise.  The split falls out of cutting the vertex loop at
    ``hub_count``.
    """
    deg = lotus.he.degrees()
    pair_counts = deg * (deg - 1) // 2
    work = pair_counts > 0
    big = work & (pair_counts > _PAIR_CHUNK)
    small = work & ~big
    results = []
    for is_hub_range in (True, False):
        vertex_sel = (
            np.arange(lotus.num_vertices) < lotus.hub_count
            if is_hub_range
            else np.arange(lotus.num_vertices) >= lotus.hub_count
        )
        c = _batched_pair_count(lotus, np.flatnonzero(small & vertex_sel))
        for v in np.flatnonzero(big & vertex_sel):
            c += _count_pairs_against_h2h(lotus, int(v))
        results.append(c)
    return results[0], results[1]


def count_hnn(lotus: LotusGraph, fused: bool = True) -> int:
    """Phase 2: triangles with exactly one hub (Algorithm 3 lines 7-9).

    For each vertex ``v`` and non-hub neighbour ``u`` (from NHE), count
    common *hub* neighbours via the 16-bit HE rows.
    """
    he_indptr = lotus.he.indptr
    he_indices = lotus.he.indices
    nhe_indptr = lotus.nhe.indptr
    nhe_indices = lotus.nhe.indices
    if fused:
        src = np.repeat(
            np.arange(lotus.num_vertices, dtype=np.int64), np.diff(nhe_indptr)
        )
        dst = nhe_indices.astype(np.int64, copy=False)
        return batch_pairwise_counts(
            he_indptr, he_indices, he_indptr, he_indices, src, dst
        )
    total = 0
    nhe_deg = np.diff(nhe_indptr)
    he_deg = np.diff(he_indptr)
    for v in np.flatnonzero((nhe_deg > 0) & (he_deg > 0)):
        us = nhe_indices[nhe_indptr[v] : nhe_indptr[v + 1]]
        query = he_indices[he_indptr[v] : he_indptr[v + 1]]
        counts = batch_intersect_counts(
            he_indptr, he_indices, query, us.astype(np.int64)
        )
        total += int(counts.sum())
    return total


def count_nnn(lotus: LotusGraph, fused: bool = True) -> int:
    """Phase 3: triangles between three non-hubs (Algorithm 3 lines 10-12).

    Forward-style counting restricted to the NHE sub-graph; hub edges are
    never loaded (the fruitless-search pruning of Section 3.3).
    """
    indptr = lotus.nhe.indptr
    indices = lotus.nhe.indices
    if fused:
        src = np.repeat(
            np.arange(lotus.num_vertices, dtype=np.int64), np.diff(indptr)
        )
        dst = indices.astype(np.int64, copy=False)
        return batch_pairwise_counts(indptr, indices, indptr, indices, src, dst)
    total = 0
    for v in np.flatnonzero(np.diff(indptr) >= 2):
        row = indices[indptr[v] : indptr[v + 1]]
        counts = batch_intersect_counts(indptr, indices, row, row.astype(np.int64))
        total += int(counts.sum())
    return total


def lotus_count_from_structure(
    lotus: LotusGraph,
    timer: PhaseTimer | None = None,
    backend: str | None = None,
    workers: int | None = None,
    graph_manifest: dict | None = None,
) -> LotusCounts:
    """Run the three counting phases on a prebuilt structure.

    ``backend`` selects the phase-1 execution backend
    (``auto | sequential | threads | processes``; ``None`` means
    sequential — phases 2 and 3 are fully vectorised single passes and
    always run in-process).  ``workers`` sizes the thread/process pool.
    ``graph_manifest`` optionally hands the process backend an existing
    shared-memory manifest of ``lotus`` (the serving cache's segment) so
    repeated dispatches skip the per-call structure copy.  All backends
    are bit-identical.
    """
    timer = timer or PhaseTimer()
    with timed_phase(timer, "hhh+hhn") as span:
        if backend is None or backend == "sequential":
            hhh, hhn = count_hhh_hhn(lotus)
        else:
            # local import: repro.parallel.executor imports this module
            from repro.parallel.backend import run_phase1

            hhh, hhn = run_phase1(
                lotus,
                backend=backend,
                workers=workers or 4,
                graph_manifest=graph_manifest,
            )
        if span.enabled:
            deg = lotus.he.degrees()
            span.set("pairs_tested", int((deg * (deg - 1) // 2).sum()))
            span.set("bytes_touched", int(lotus.h2h.nbytes + lotus.he.indices.nbytes))
            span.set("hhh", hhh)
            span.set("hhn", hhn)
    with timed_phase(timer, "hnn") as span:
        hnn = count_hnn(lotus)
        if span.enabled:
            span.set("wedges_probed", int(lotus.nhe.num_edges))
            span.set("bytes_touched", int(lotus.he.indices.nbytes + lotus.nhe.indices.nbytes))
            span.set("hnn", hnn)
    with timed_phase(timer, "nnn") as span:
        nnn = count_nnn(lotus)
        if span.enabled:
            span.set("wedges_probed", int(lotus.nhe.num_edges))
            span.set("bytes_touched", int(lotus.nhe.indices.nbytes))
            span.set("nnn", nnn)
    return LotusCounts(hhh=hhh, hhn=hhn, hnn=hnn, nnn=nnn)


def count_triangles_lotus(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    backend: str | None = None,
    workers: int | None = None,
    partitioner: str = "hash",
) -> TCResult:
    """End-to-end LOTUS triangle counting: Algorithm 2 + Algorithm 3.

    The returned :class:`~repro.tc.result.TCResult` carries the phase
    breakdown (Figure 6) in ``phases`` and the per-type counts (Figure 7)
    plus the HE/NHE edge split (Figure 8) in ``extra``.  ``backend`` /
    ``workers`` select the phase-1 execution backend (see
    :func:`lotus_count_from_structure`).  ``backend="distributed"``
    instead shards the whole count across ``workers`` real processes
    (:mod:`repro.dist.runtime`) partitioned by ``partitioner``; the
    per-type counts are identical to every other backend.
    """
    if backend == "distributed":
        return _count_triangles_distributed(
            graph, config, shards=workers or 2, partitioner=partitioner
        )
    timer = PhaseTimer()
    with root_span(
        "lotus", num_vertices=graph.num_vertices, num_edges=graph.num_edges
    ) as span:
        lotus = build_lotus_graph(graph, config, timer=timer)
        counts = lotus_count_from_structure(
            lotus, timer=timer, backend=backend, workers=workers
        )
        span.set("triangles", counts.total)
        span.set("hub_count", lotus.hub_count)
    return TCResult(
        algorithm="lotus",
        triangles=counts.total,
        elapsed=timer.total,
        phases=dict(timer.phases),
        extra={
            "counts": counts,
            "backend": backend or "sequential",
            "hub_count": lotus.hub_count,
            "hub_edges": lotus.hub_edges,
            "non_hub_edges": lotus.non_hub_edges,
            "hub_edge_fraction": lotus.hub_edge_fraction(),
        },
    )


def _count_triangles_distributed(
    graph: CSRGraph,
    config: LotusConfig | None,
    shards: int,
    partitioner: str,
) -> TCResult:
    """The ``backend="distributed"`` path of :func:`count_triangles_lotus`.

    The sharded runtime rebuilds the LOTUS orientation per shard, so
    there is no separate preprocess phase here; the whole run is one
    ``distributed`` phase whose worker-side spans carry the breakdown.
    """
    # local import: repro.dist.runtime imports LotusCounts from here
    from repro.dist.runtime import run_distributed_count

    timer = PhaseTimer()
    with root_span(
        "lotus", num_vertices=graph.num_vertices, num_edges=graph.num_edges
    ) as span:
        with timed_phase(timer, "distributed"):
            run = run_distributed_count(
                graph, config=config, shards=shards, partitioner=partitioner
            )
        counts = run.counts
        span.set("triangles", counts.total)
        span.set("hub_count", run.hub_count)
    total_edges = run.hub_edges + run.non_hub_edges
    return TCResult(
        algorithm="lotus",
        triangles=counts.total,
        elapsed=timer.total,
        phases=dict(timer.phases),
        extra={
            "counts": counts,
            "backend": "distributed",
            "shards": run.shards,
            "partitioner": run.partitioner,
            "hub_count": run.hub_count,
            "hub_edges": run.hub_edges,
            "non_hub_edges": run.non_hub_edges,
            "hub_edge_fraction": run.hub_edges / total_edges if total_edges else 0.0,
            "boundary_edge_ratio": run.boundary_edge_ratio,
            "bytes_exchanged": run.bytes_exchanged,
        },
    )
