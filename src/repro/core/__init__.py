"""LOTUS core: the paper's primary contribution.

* :mod:`repro.core.bitarray` — the triangular H2H bit array (Section 4.2);
* :mod:`repro.core.structure` — the Lotus graph structure and
  preprocessing (Algorithm 2);
* :mod:`repro.core.count` — the 3-phase triangle count (Algorithm 3) with
  per-phase breakdown and per-type triangle counts;
* :mod:`repro.core.tiling` — Squared Edge Tiling and the edge-balanced
  comparator (Section 4.6);
* :mod:`repro.core.adaptive` — skew detection / Forward fallback
  (Section 5.5) and the recursive-LOTUS extension (Section 7);
* :mod:`repro.core.stats` — the hub analytics of Table 1.
"""

from repro.core.bitarray import TriangularBitArray
from repro.core.structure import LotusConfig, LotusGraph, build_lotus_graph
from repro.core.count import (
    LotusCounts,
    count_triangles_lotus,
    lotus_count_from_structure,
    count_hhh_hhn,
    count_hnn,
    count_nnn,
)
from repro.core.tiling import (
    squared_edge_tiling,
    edge_balanced_tiling,
    tile_pair_work,
    Tile,
    tiles_for_phase1,
)
from repro.core.adaptive import count_triangles_adaptive, count_triangles_lotus_recursive
from repro.core.blocking import count_hnn_blocked, blocked_arc_order, phase2_blocked_trace
from repro.core.local import LotusLocalResult, lotus_local_counts
from repro.core.stats import hub_characteristics, HubCharacteristics

__all__ = [
    "TriangularBitArray",
    "LotusConfig",
    "LotusGraph",
    "build_lotus_graph",
    "LotusCounts",
    "count_triangles_lotus",
    "lotus_count_from_structure",
    "count_hhh_hhn",
    "count_hnn",
    "count_nnn",
    "squared_edge_tiling",
    "edge_balanced_tiling",
    "tile_pair_work",
    "Tile",
    "tiles_for_phase1",
    "count_triangles_adaptive",
    "count_triangles_lotus_recursive",
    "count_hnn_blocked",
    "blocked_arc_order",
    "phase2_blocked_trace",
    "LotusLocalResult",
    "lotus_local_counts",
    "hub_characteristics",
    "HubCharacteristics",
]
