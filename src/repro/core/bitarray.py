"""The H2H triangular bit array (Section 4.2).

Hub-to-hub edges are stored with 1 bit per hub pair.  Since every hub
only records neighbours with lower IDs, the array is triangular: for
hubs ``h1 > h2 >= 0`` the bit at index ``h1*(h1-1)/2 + h2`` says whether
the edge exists.  The layout is "h1-major" so bits for consecutive h2
values are adjacent in memory (Section 4.4.1) — the property that gives
phase 1 its locality and that Table 8 / Figure 9 measure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TriangularBitArray", "triangular_index"]


def triangular_index(h1: np.ndarray | int, h2: np.ndarray | int) -> np.ndarray | int:
    """Bit index of pair ``(h1, h2)`` with ``h1 > h2``: ``h1*(h1-1)/2 + h2``."""
    h1 = np.asarray(h1, dtype=np.int64)
    h2 = np.asarray(h2, dtype=np.int64)
    return h1 * (h1 - 1) // 2 + h2


class TriangularBitArray:
    """Dense triangular bit array over ``n`` items, bit per unordered pair.

    Backed by a ``uint8`` NumPy array; all set/test operations accept
    vectors of pairs.  Mirrors the paper's TBitArray (Algorithm 2 line 3):
    ``n*(n-1)/2`` bits, initialised to zero.
    """

    __slots__ = ("n", "num_bits", "data")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.n = int(n)
        self.num_bits = self.n * (self.n - 1) // 2
        self.data = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)

    @classmethod
    def from_data(cls, n: int, data: np.ndarray) -> "TriangularBitArray":
        """Wrap an existing byte buffer (e.g. a shared-memory view) without
        copying.  ``data`` must be the exact ``uint8`` backing size for
        ``n`` items."""
        if n < 0:
            raise ValueError("n must be >= 0")
        obj = cls.__new__(cls)
        obj.n = int(n)
        obj.num_bits = obj.n * (obj.n - 1) // 2
        expected = (obj.num_bits + 7) // 8
        data = np.asarray(data)
        if data.dtype != np.uint8 or data.size != expected:
            raise ValueError(
                f"backing buffer must be uint8[{expected}], "
                f"got {data.dtype}[{data.size}]"
            )
        obj.data = data
        return obj

    # -- core bit operations (vectorised) ----------------------------------
    def _indices(self, h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
        h1 = np.asarray(h1, dtype=np.int64)
        h2 = np.asarray(h2, dtype=np.int64)
        if h1.shape != h2.shape:
            raise ValueError("h1 and h2 must have the same shape")
        if h1.size and (int(h1.max(initial=0)) >= self.n or int(h2.min(initial=0)) < 0):
            raise IndexError("hub ID out of range")
        if np.any(h1 <= h2):
            raise ValueError("pairs must satisfy h1 > h2")
        return triangular_index(h1, h2)

    def set_pairs(self, h1: np.ndarray, h2: np.ndarray) -> None:
        """Set the bits for pairs ``(h1[i], h2[i])``; requires ``h1 > h2``."""
        idx = self._indices(h1, h2)
        np.bitwise_or.at(self.data, idx >> 3, np.uint8(1) << (idx & 7).astype(np.uint8))

    def clear_pairs(self, h1: np.ndarray, h2: np.ndarray) -> None:
        """Clear the bits for pairs ``(h1[i], h2[i])``; requires ``h1 > h2``.

        The counting phases never unset bits, but the dynamic-graph layer
        (:mod:`repro.dynamic`) patches the resident H2H structure in place
        when a hub-to-hub edge is deleted instead of rebuilding it.
        """
        idx = self._indices(h1, h2)
        np.bitwise_and.at(
            self.data, idx >> 3, ~(np.uint8(1) << (idx & 7).astype(np.uint8))
        )

    def test_pairs(self, h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
        """Boolean array: is the bit set for each pair?  Requires ``h1 > h2``."""
        idx = self._indices(h1, h2)
        return (self.data[idx >> 3] >> (idx & 7).astype(np.uint8)) & 1 != 0

    def set(self, h1: int, h2: int) -> None:
        """Scalar convenience wrapper around :meth:`set_pairs`; accepts any order."""
        a, b = (h1, h2) if h1 > h2 else (h2, h1)
        self.set_pairs(np.asarray([a]), np.asarray([b]))

    def clear(self, h1: int, h2: int) -> None:
        """Scalar convenience wrapper around :meth:`clear_pairs`; accepts any order."""
        a, b = (h1, h2) if h1 > h2 else (h2, h1)
        self.clear_pairs(np.asarray([a]), np.asarray([b]))

    def is_set(self, h1: int, h2: int) -> bool:
        """Scalar adjacency test (Algorithm 3 line 5); accepts any order."""
        if h1 == h2:
            return False
        a, b = (h1, h2) if h1 > h2 else (h2, h1)
        return bool(self.test_pairs(np.asarray([a]), np.asarray([b]))[0])

    # -- analytics (Table 8 / Figure 9 support) -----------------------------
    def count_set(self) -> int:
        """Population count — the number of hub-to-hub edges stored."""
        return int(np.unpackbits(self.data).sum())

    def density(self) -> float:
        """Fraction of non-zero bits (Table 8, column 2)."""
        if self.num_bits == 0:
            return 0.0
        return self.count_set() / self.num_bits

    @property
    def nbytes(self) -> int:
        """Allocated size in bytes (Table 7 accounts a fixed 256 MB for 64 K hubs)."""
        return int(self.data.nbytes)

    def zero_cacheline_fraction(self, line_bytes: int = 64) -> float:
        """Fraction of ``line_bytes``-aligned blocks containing only zero bits
        (Table 8, column 3).  Web graphs pack hub edges into few lines."""
        if self.data.size == 0:
            return 0.0
        nlines = (self.data.size + line_bytes - 1) // line_bytes
        padded = np.zeros(nlines * line_bytes, dtype=np.uint8)
        padded[: self.data.size] = self.data
        line_sums = padded.reshape(nlines, line_bytes).sum(axis=1)
        return float(np.count_nonzero(line_sums == 0) / nlines)

    def bit_index_to_cacheline(self, idx: np.ndarray, line_bytes: int = 64) -> np.ndarray:
        """Cacheline ordinal of each bit index — used for the Figure 9
        access-frequency analysis and by the memory-trace builder."""
        return (np.asarray(idx, dtype=np.int64) >> 3) // line_bytes

    def __repr__(self) -> str:
        return f"TriangularBitArray(n={self.n}, set={self.count_set()}/{self.num_bits})"
