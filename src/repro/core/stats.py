"""Hub analytics — the Table 1 measurements (Section 3).

Given a graph and a hub-selection rule, compute:

* the hub-to-hub / hub-to-non-hub / non-hub-to-non-hub edge split
  (columns 2-5);
* the fraction of triangles containing at least one hub (column 6);
* the relative density of the hub sub-graph (column 7);
* the fruitless-search fraction — how many merge-join edge accesses
  performed while processing hub-free non-hub vertices point at hub
  edges and could be pruned (column 8, Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.degree import hub_mask_top_fraction
from repro.graph.reorder import apply_degree_ordering
from repro.tc.matrix import count_triangles_matrix

__all__ = ["HubCharacteristics", "hub_characteristics"]


@dataclass(frozen=True)
class HubCharacteristics:
    """One row of Table 1."""

    num_hubs: int
    hub_to_hub_pct: float
    hub_to_nonhub_pct: float
    hub_edges_pct: float
    nonhub_edges_pct: float
    hub_triangles_pct: float
    relative_density: float
    fruitless_pct: float


def hub_characteristics(
    graph: CSRGraph, hub_fraction: float = 0.01
) -> HubCharacteristics:
    """Compute the Table-1 row for ``graph`` with top-``hub_fraction`` hubs."""
    n = graph.num_vertices
    m = graph.num_edges
    if n == 0 or m == 0:
        return HubCharacteristics(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    hubs = hub_mask_top_fraction(graph, hub_fraction)
    num_hubs = int(hubs.sum())

    # --- edge split (columns 2-5) ------------------------------------------
    edges = graph.edges()
    u_hub = hubs[edges[:, 0]]
    v_hub = hubs[edges[:, 1]]
    hh = int(np.count_nonzero(u_hub & v_hub))
    hn = int(np.count_nonzero(u_hub ^ v_hub))
    nn = m - hh - hn

    # --- hub triangle share (column 6) --------------------------------------
    total_triangles = count_triangles_matrix(graph)
    nonhub_graph = graph.subgraph_mask(~hubs)
    nonhub_triangles = count_triangles_matrix(nonhub_graph)
    hub_tri_pct = (
        100.0 * (total_triangles - nonhub_triangles) / total_triangles
        if total_triangles
        else 0.0
    )

    # --- relative density (column 7) ----------------------------------------
    # RD_S = (|E'| / |V'|^2) / (|E| / |V|^2)
    if num_hubs > 0 and hh > 0:
        rd = (hh / (num_hubs * num_hubs)) / (m / (n * n))
    else:
        rd = 0.0

    return HubCharacteristics(
        num_hubs=num_hubs,
        hub_to_hub_pct=100.0 * hh / m,
        hub_to_nonhub_pct=100.0 * hn / m,
        hub_edges_pct=100.0 * (hh + hn) / m,
        nonhub_edges_pct=100.0 * nn / m,
        hub_triangles_pct=hub_tri_pct,
        relative_density=rd,
        fruitless_pct=fruitless_search_pct(graph, hubs),
    )


def fruitless_search_pct(graph: CSRGraph, hubs: np.ndarray) -> float:
    """Fraction of merge-join memory accesses that touch hub edges while
    processing non-hub vertices with no hub neighbours (Table 1 col. 8).

    Replays the Forward algorithm's access pattern on the degree-ordered
    graph (hubs get the lowest IDs, so hub entries sit at the front of
    every sorted neighbour list and are always touched first by a merge
    join).  For each qualifying vertex ``v`` — non-hub with
    ``N_v^< ∩ Hubs = {}`` — and each ``u in N_v^<``, the merge join of
    ``N_v^<`` with ``N_u^<`` touches a prefix of each list; touched
    entries of ``N_u^<`` that are hub IDs are "fruitless" accesses
    (they can never close a triangle with ``v``, Section 3.3).
    """
    num_hubs = int(np.asarray(hubs).sum())
    if num_hubs == 0:
        return 0.0
    ordered, _ra = apply_degree_ordering(graph)
    oriented = ordered.orient_lower()
    indptr = oriented.indptr
    indices = oriented.indices.astype(np.int64, copy=False)
    # after degree ordering the hubs are exactly the IDs < num_hubs
    total_touched = 0
    hub_touched = 0
    for v in range(num_hubs, oriented.num_vertices):
        row = indices[indptr[v] : indptr[v + 1]]
        if row.size == 0 or (row[0] < num_hubs):
            continue  # v has a hub neighbour (hubs sort first) or no work
        last_v = int(row[-1])
        for u in row:
            urow = indices[indptr[u] : indptr[u + 1]]
            if urow.size == 0:
                continue
            # merge join touches the prefix of each list bounded by the
            # other list's maximum (merge_join_touched rule)
            touched_u = min(int(np.searchsorted(urow, last_v, side="right")) + 1, urow.size)
            touched_v = min(int(np.searchsorted(row, int(urow[-1]), side="right")) + 1, row.size)
            hubs_in_u = int(np.searchsorted(urow, num_hubs))
            hub_touched += min(hubs_in_u, touched_u)
            total_touched += touched_u + touched_v
    if total_touched == 0:
        return 0.0
    return 100.0 * hub_touched / total_touched
