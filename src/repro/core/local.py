"""Hub-aware local triangle counting.

Combines the LOTUS decomposition with per-vertex triangle counts: every
triangle is classified (HHH/HHN/HNN/NNN) *and* credited to its three
corners, giving local counts plus the Figure-7 type totals in one
enumeration.  Local TC is the workhorse of the clustering-coefficient
applications in the paper's introduction; the hub classification makes
the skew visible per vertex (hubs accumulate the overwhelming share of
local triangles — the per-vertex form of Table 1's observation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.count import LotusCounts
from repro.core.structure import LotusConfig
from repro.graph.csr import CSRGraph
from repro.graph.reorder import lotus_relabeling_array, relabel
from repro.tc.local import _matched_triangles

__all__ = ["LotusLocalResult", "lotus_local_counts"]


@dataclass(frozen=True)
class LotusLocalResult:
    """Per-vertex triangle counts plus the LOTUS type decomposition.

    ``per_vertex[v]`` counts all triangles through original vertex ``v``;
    ``per_vertex_hub[v]`` counts only those containing at least one hub.
    """

    per_vertex: np.ndarray
    per_vertex_hub: np.ndarray
    counts: LotusCounts
    hub_mask: np.ndarray  # original-ID boolean mask of the hub set

    @property
    def total(self) -> int:
        return self.counts.total


def lotus_local_counts(
    graph: CSRGraph, config: LotusConfig | None = None
) -> LotusLocalResult:
    """Enumerate all triangles once; classify by hub membership and credit
    the three corners.  Results are indexed by *original* vertex IDs."""
    config = config or LotusConfig()
    n = graph.num_vertices
    hub_count = config.resolve_hub_count(n)
    ra = lotus_relabeling_array(graph, config.head_fraction)
    relabeled = relabel(graph, ra)
    v, u, w = _matched_triangles(relabeled.orient_lower())

    hubs_in_triangle = (
        (v < hub_count).astype(np.int64)
        + (u < hub_count).astype(np.int64)
        + (w < hub_count).astype(np.int64)
    )
    type_counts = np.bincount(hubs_in_triangle, minlength=4)
    counts = LotusCounts(
        hhh=int(type_counts[3]),
        hhn=int(type_counts[2]),
        hnn=int(type_counts[1]),
        nnn=int(type_counts[0]),
    )

    per_vertex_new = (
        np.bincount(v, minlength=n)
        + np.bincount(u, minlength=n)
        + np.bincount(w, minlength=n)
    )
    is_hub_tri = hubs_in_triangle > 0
    per_vertex_hub_new = (
        np.bincount(v[is_hub_tri], minlength=n)
        + np.bincount(u[is_hub_tri], minlength=n)
        + np.bincount(w[is_hub_tri], minlength=n)
    )
    # map back: new-ID arrays -> original order (ra[orig] = new)
    per_vertex = per_vertex_new[ra]
    per_vertex_hub = per_vertex_hub_new[ra]
    hub_mask = ra < hub_count
    return LotusLocalResult(
        per_vertex=per_vertex,
        per_vertex_hub=per_vertex_hub,
        counts=counts,
        hub_mask=hub_mask,
    )
