"""LOTUS: Locality Optimizing Triangle Counting — Python reproduction.

Public API highlights:

* :func:`repro.core.count_triangles_lotus` — the paper's algorithm,
  end-to-end (Algorithms 2 + 3);
* :mod:`repro.tc` — every baseline TC algorithm plus local counting,
  k-truss, k-clique, streaming/approximate estimators;
* :mod:`repro.graph` — CSX graphs, generators, the dataset registry;
* :mod:`repro.memsim` — the memory-hierarchy simulation substrate;
* :mod:`repro.parallel` — tiling, scheduling, threaded execution;
* :mod:`repro.eval` — one entry point per paper table/figure.
"""

from repro.core import (
    LotusConfig,
    LotusCounts,
    count_triangles_adaptive,
    count_triangles_lotus,
    build_lotus_graph,
    hub_characteristics,
)
from repro.graph import CSRGraph, from_edges, load_dataset
from repro.tc import TCResult, count_triangles_forward, count_triangles_matrix

__version__ = "1.0.0"

__all__ = [
    "LotusConfig",
    "LotusCounts",
    "count_triangles_adaptive",
    "count_triangles_lotus",
    "build_lotus_graph",
    "hub_characteristics",
    "CSRGraph",
    "from_edges",
    "load_dataset",
    "TCResult",
    "count_triangles_forward",
    "count_triangles_matrix",
    "__version__",
]
