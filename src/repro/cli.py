"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``count``       — count triangles of a dataset or edge-list file with a
  chosen algorithm, printing the count, timing breakdown and (for LOTUS)
  the triangle-type decomposition;
* ``report``      — run one algorithm under the observability registry and
  emit a structured JSON/CSV artifact (span tree, counters, gauges,
  histograms; see ``docs/observability.md``);
* ``analyze``     — Table-1 style hub analytics of a graph;
* ``datasets``    — list the synthetic stand-in registry;
* ``experiment``  — regenerate one paper table/figure by ID;
* ``simulate``    — Figure-4 style cache replay for one dataset;
* ``locality``    — per-region attribution report: which structure
  (``he``/``nhe``/``h2h``/``indices``) causes which L1/L2/LLC/DTLB
  misses, with per-region reuse-distance percentiles (see
  ``docs/observability.md``);
* ``runs``        — the run ledger: ``list`` / ``show`` / ``diff`` /
  ``export`` over provenance-stamped run records appended by traced
  runs (``count --trace``, ``report --ledger``, the benchmark harness;
  see ``docs/runs.md``).  ``diff`` applies the same tolerance logic as
  ``repro.obs.regress``; ``export --format trace`` emits Chrome
  ``trace_event`` JSON loadable in Perfetto.
* ``serve``       — JSON-lines query loop over a warm structure cache:
  one request object per input line, one stable-field-order response
  per output line (see ``docs/serving.md``);
* ``query``       — one-shot client: runs one query through the engine
  (warming the cache first by default) and prints the JSON result;
* ``replay``      — stream a timestamped edge file through a
  :class:`~repro.dynamic.graph.DynamicGraph`, reporting the triangle-
  count trajectory (exact incremental maintenance; see
  ``docs/dynamic.md``).

A ``serve`` session also accepts dynamic-graph update requests
(``{"op": "insert"/"delete"/"compact", "edges": [[u, v], ...]}``);
counts against an updated source are served from versioned snapshots.

Input errors (missing files, malformed artifacts, unresolvable run
references) print a one-line ``error: ...`` and exit with status 2.
Malformed *request lines* inside a ``serve`` session do not kill the
session: each gets a per-request error response on stdout instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import LotusConfig, count_triangles_lotus, hub_characteristics
from repro.core.adaptive import count_triangles_adaptive
from repro.graph import DATASETS, load_dataset, load_edgelist, load_npz
from repro.obs import (
    build_report,
    render_span_tree,
    report_to_csv,
    report_to_json,
    spans_from_report,
    use_registry,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    Ledger,
    LedgerError,
    build_run_record,
    diff_runs,
    format_run_diff,
)
from repro.tc import (
    count_triangles_edge_iterator,
    count_triangles_forward,
    count_triangles_forward_hashed,
    count_triangles_block,
    count_triangles_node_iterator,
)

ALGORITHMS = {
    "lotus": lambda g, hubs: count_triangles_lotus(
        g, LotusConfig(hub_count=hubs) if hubs else None
    ),
    "adaptive": lambda g, hubs: count_triangles_adaptive(
        g, LotusConfig(hub_count=hubs) if hubs else None
    ),
    "forward": lambda g, _: count_triangles_forward(g),
    "forward-hashed": lambda g, _: count_triangles_forward_hashed(g),
    "edge-iterator": lambda g, _: count_triangles_edge_iterator(g),
    "node-iterator": lambda g, _: count_triangles_node_iterator(g),
    "block": lambda g, _: count_triangles_block(g),
}


def _fail(message: str) -> "SystemExit":
    """One-line diagnostic on stderr, exit status 2 (usage/input error)."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _load_graph(args: argparse.Namespace):
    if args.dataset:
        if args.dataset not in DATASETS:
            _fail(f"unknown dataset {args.dataset!r}; see `repro datasets`")
        return load_dataset(args.dataset)
    if args.file:
        if not os.path.exists(args.file):
            _fail(f"no such file: {args.file}")
        try:
            if args.file.endswith(".npz"):
                return load_npz(args.file)
            return load_edgelist(args.file)
        except SystemExit:
            raise
        except Exception as exc:  # malformed edge list / npz payload
            _fail(f"cannot load graph from {args.file}: {exc}")
    raise SystemExit("specify --dataset NAME or --file PATH")


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", help="synthetic stand-in name (see `datasets`)")
    p.add_argument("--file", help="edge-list (.txt) or CSR (.npz) file")


def _record_run(
    registry,
    args: argparse.Namespace,
    graph,
    command: str,
    config: dict,
    meta: dict,
) -> str:
    """Append one provenance-stamped record to the run ledger."""
    record = build_run_record(
        registry,
        command=command,
        config=config,
        graph=graph,
        dataset_name=args.dataset,
        meta=meta,
    )
    ledger = Ledger(args.ledger)
    run_id = ledger.append(record)
    print(f"recorded run {run_id} -> {ledger.path}")
    return run_id


def cmd_count(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    backend = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    shards = getattr(args, "shards", None)
    partitioner = getattr(args, "partitioner", None)
    if (backend or workers) and args.algorithm != "lotus":
        _fail(
            f"--backend/--workers select the LOTUS phase-1 backend; "
            f"not supported for --algorithm {args.algorithm}"
        )
    if workers is not None and workers < 1:
        _fail("--workers must be >= 1")
    if (shards is not None or partitioner is not None) and backend != "distributed":
        _fail("--shards/--partitioner require --backend distributed")
    if backend == "distributed":
        if shards is not None and shards < 1:
            _fail("--shards must be >= 1")
        workers = shards or workers or 2

    def run():
        if backend or workers:
            config = LotusConfig(hub_count=args.hub_count) if args.hub_count else None
            return count_triangles_lotus(
                graph, config, backend=backend or "auto", workers=workers,
                partitioner=partitioner or "hash",
            )
        return ALGORITHMS[args.algorithm](graph, args.hub_count)

    if args.trace:
        with use_registry() as registry:
            result = run()
    else:
        result = run()
    print(f"graph: {graph}")
    print(f"algorithm: {result.algorithm}")
    if backend == "distributed":
        print(
            f"backend: distributed (shards={result.extra.get('shards')}, "
            f"partitioner={result.extra.get('partitioner')}, "
            f"boundary edges {result.extra.get('boundary_edge_ratio', 0.0):.1%}, "
            f"{result.extra.get('bytes_exchanged', 0):,} bytes exchanged)"
        )
    elif backend or workers:
        print(f"backend: {result.extra.get('backend')} (workers={workers or 4})")
    print(f"triangles: {result.triangles:,}")
    print(f"total time: {result.elapsed:.3f}s")
    for phase, seconds in result.phases.items():
        print(f"  {phase:<12} {seconds:.3f}s")
    counts = result.extra.get("counts")
    if counts is not None:
        print(
            f"types: HHH={counts.hhh:,} HHN={counts.hhn:,} "
            f"HNN={counts.hnn:,} NNN={counts.nnn:,} "
            f"(hub share {counts.hub_fraction():.1%})"
        )
    if args.trace:
        _record_run(
            registry,
            args,
            graph,
            command="count",
            config={
                "command": "count",
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "file": args.file,
                "hub_count": args.hub_count,
                "backend": backend,
                "workers": workers,
                **(
                    {"shards": workers, "partitioner": partitioner or "hash"}
                    if backend == "distributed"
                    else {}
                ),
            },
            meta={
                "algorithm": result.algorithm,
                "triangles": int(result.triangles),
                "elapsed": float(result.elapsed),
                "phases": dict(result.phases),
            },
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    algorithm = ALGORITHMS[args.algorithm]
    with use_registry() as registry:
        result = algorithm(graph, args.hub_count)
        if args.memsim:
            _replay_memsim(graph, registry, args)
    meta = {
        "dataset": args.dataset or args.file,
        "algorithm": result.algorithm,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "triangles": result.triangles,
        "elapsed": result.elapsed,
        "phases": dict(result.phases),
    }
    report = build_report(registry, meta=meta)
    if args.format == "json":
        text = report_to_json(report)
    elif args.format == "csv":
        text = report_to_csv(report)
    else:  # tree
        lines = [
            f"{meta['algorithm']} on {meta['dataset']}: "
            f"{meta['triangles']:,} triangles in {meta['elapsed']:.3f}s"
        ]
        lines += [render_span_tree(root) for root in spans_from_report(report)]
        metrics = report["metrics"]
        for name, value in metrics["counters"].items():
            lines.append(f"counter   {name:<28} {value:,}")
        for name, value in metrics["gauges"].items():
            lines.append(f"gauge     {name:<28} {value:.4f}")
        for name, snap in metrics["histograms"].items():
            lines.append(
                f"histogram {name:<28} count={snap['count']} "
                f"sum={snap['sum']:.6g} max={snap['max']}"
            )
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(text)
    if args.ledger:
        _record_run(
            registry,
            args,
            graph,
            command="report",
            config={
                "command": "report",
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "file": args.file,
                "hub_count": args.hub_count,
                "memsim": bool(args.memsim),
                "machine": args.machine if args.memsim else None,
                "scale": args.scale if args.memsim else None,
            },
            meta=meta,
        )
    return 0


def _replay_memsim(graph, registry, args: argparse.Namespace) -> None:
    """Replay the graph's lotus/forward traces so cache + DTLB hit rates
    land in the same report artifact as the counting spans."""
    from repro.core import build_lotus_graph
    from repro.graph.reorder import apply_degree_ordering
    from repro.memsim import MACHINES, MemoryHierarchy, forward_trace, lotus_trace

    machine = MACHINES[args.machine].scaled(args.scale)
    oriented = apply_degree_ordering(graph)[0].orient_lower()
    lotus = build_lotus_graph(graph)
    for alg, trace in (
        ("forward", forward_trace(oriented)),
        ("lotus", lotus_trace(lotus)),
    ):
        with registry.span(f"memsim:{alg}", machine=machine.name):
            h = MemoryHierarchy(machine)
            h.access_lines(trace)
            h.export_metrics(registry, prefix=f"memsim.{alg}")


def cmd_analyze(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    hc = hub_characteristics(graph, hub_fraction=args.hub_fraction)
    print(f"graph: {graph}")
    print(f"hubs (top {args.hub_fraction:.1%} by degree): {hc.num_hubs}")
    print(f"hub-to-hub edges:     {hc.hub_to_hub_pct:6.2f}%")
    print(f"hub-to-non-hub edges: {hc.hub_to_nonhub_pct:6.2f}%")
    print(f"hub edges total:      {hc.hub_edges_pct:6.2f}%")
    print(f"hub triangles:        {hc.hub_triangles_pct:6.2f}%")
    print(f"relative hub density: {hc.relative_density:,.0f}x")
    print(f"fruitless accesses:   {hc.fruitless_pct:6.2f}%")
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':<12} {'paper dataset':<14} {'type':<5} "
          f"{'paper |V|(M)':>12} {'paper |E|(B)':>12}")
    for spec in DATASETS.values():
        print(f"{spec.name:<12} {spec.paper_name:<14} {spec.kind:<5} "
              f"{spec.paper_vertices_m:>12} {spec.paper_edges_b:>12}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments

    fn = getattr(experiments, args.id, None)
    if fn is None or args.id.startswith("_"):
        valid = [n for n in experiments.__all__ if n not in ("CACHE_SCALE",)]
        raise SystemExit(f"unknown experiment {args.id!r}; one of: {valid}")
    print(fn().render())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import build_lotus_graph
    from repro.graph.reorder import apply_degree_ordering
    from repro.memsim import (
        MACHINES,
        MemoryHierarchy,
        forward_trace,
        lotus_trace,
    )

    graph = _load_graph(args)
    machine = MACHINES[args.machine].scaled(args.scale)
    oriented = apply_degree_ordering(graph)[0].orient_lower()
    lotus = build_lotus_graph(graph)
    print(f"machine: {machine.name} (L1={machine.l1_bytes}B "
          f"L2={machine.l2_bytes}B L3={machine.l3_bytes_total}B)")
    for alg, trace in (
        ("forward", forward_trace(oriented)),
        ("lotus", lotus_trace(lotus)),
    ):
        h = MemoryHierarchy(machine)
        h.access_lines(trace)
        s = h.stats()
        print(f"{alg:<8} accesses={s.accesses:,} LLC misses={s.llc_misses:,} "
              f"DTLB misses={s.dtlb_misses:,}")
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    from repro.memsim import MACHINES
    from repro.obs.locality import build_locality_report, render_locality_table
    from repro.obs.report import report_to_json

    graph = _load_graph(args)
    machine = MACHINES[args.machine].scaled(args.scale)
    algorithms = (
        ("forward", "lotus") if args.algorithm == "both" else (args.algorithm,)
    )
    report = build_locality_report(
        graph,
        machine,
        dataset=args.dataset or args.file,
        algorithms=algorithms,
        reuse_limit=args.reuse_limit,
    )
    if args.format == "json":
        text = report_to_json(report)
    else:
        text = render_locality_table(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} locality report to {args.output}")
    else:
        print(text)
    return 0


def _open_ledger(args: argparse.Namespace) -> Ledger:
    ledger = Ledger(args.ledger)
    if not ledger.path.exists():
        _fail(f"no ledger at {ledger.path} (record a run with `count --trace`)")
    return ledger


def _resolve_run(ledger: Ledger, ref: str) -> dict:
    try:
        return ledger.get(ref)
    except LedgerError as exc:
        _fail(str(exc))


def cmd_runs_list(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    try:
        entries = ledger.entries()
    except LedgerError as exc:
        _fail(str(exc))
    print(f"{'run_id':<28} {'created':<21} {'config':<24} "
          f"{'dataset':<10} {'triangles':>12}  command")
    for e in entries:
        triangles = "-" if e.get("triangles") is None else f"{e['triangles']:,}"
        print(f"{e['run_id']:<28} {e.get('created') or '-':<21} "
              f"{e.get('config_hash') or '-':<24} "
              f"{str(e.get('dataset') or '-'):<10} {triangles:>12}  "
              f"{e.get('command') or '-'}")
    print(f"{len(entries)} run(s) in {ledger.path}")
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.obs import Span

    record = _resolve_run(_open_ledger(args), args.run)
    if args.format == "json":
        print(json.dumps(record, indent=2))
        return 0
    prov = record.get("provenance", {})
    dataset = record.get("dataset", {})
    print(f"run:      {record['run_id']}")
    print(f"created:  {record.get('created')}")
    print(f"command:  {record.get('command')}")
    print(f"config:   {record.get('config_hash')}  {record.get('config')}")
    print(f"dataset:  {dataset.get('name')}  edge_hash={dataset.get('edge_hash')}  "
          f"|V|={dataset.get('num_vertices')} |E|={dataset.get('num_edges')}")
    print(f"seed:     {record.get('seed')}")
    print(f"git:      {prov.get('git_sha')}"
          f"{' (dirty)' if prov.get('git_dirty') else ''}")
    print(f"host:     {prov.get('hostname')}  python {prov.get('python')}  "
          f"numpy {prov.get('numpy')}")
    meta = record.get("meta", {})
    if meta:
        print(f"meta:     {json.dumps(meta, default=str)}")
    for root in record.get("spans", []):
        print(render_span_tree(Span.from_dict(root)))
    metrics = record.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        print(f"counter   {name:<28} {value:,}")
    for name, value in metrics.get("gauges", {}).items():
        print(f"gauge     {name:<28} {value:.4f}")
    for name, snap in metrics.get("histograms", {}).items():
        print(f"histogram {name:<28} count={snap['count']} sum={snap['sum']:.6g}")
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.regress import regressions

    ledger = _open_ledger(args)
    rec_a = _resolve_run(ledger, args.run_a)
    rec_b = _resolve_run(ledger, args.run_b)
    diff = diff_runs(rec_a, rec_b, rel_tol=args.rel_tol, share_tol=args.share_tol)
    print(format_run_diff(diff, verbose=args.verbose))
    return 1 if regressions(diff["metrics"]) else 0


def cmd_runs_export(args: argparse.Namespace) -> int:
    from repro.obs import trace_from_record

    record = _resolve_run(_open_ledger(args), args.run)
    if args.format == "trace":
        if not record.get("spans"):
            _fail(f"run {record['run_id']} recorded no spans; nothing to export")
        text = json.dumps(trace_from_record(record), indent=1)
    else:  # record: the raw run record as one JSON document
        text = json.dumps(record, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} export of {record['run_id']} to {args.output}")
    else:
        print(text)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import prometheus_exposition

    labels: dict[str, str] = {}
    for item in args.label:
        key, sep, value = item.partition("=")
        if not sep or not key:
            _fail(f"--label expects K=V, got {item!r}")
        labels[key] = value
    if bool(args.input) == bool(args.run):
        _fail("specify exactly one of --input FILE or --run REF")
    if args.input:
        if not os.path.exists(args.input):
            _fail(f"no such file: {args.input}")
        with open(args.input, encoding="utf-8") as fh:
            try:
                obj = json.load(fh)
            except json.JSONDecodeError as exc:
                _fail(f"{args.input} is not JSON: {exc}")
    else:
        obj = _resolve_run(_open_ledger(args), args.run)
    if not isinstance(obj, dict):
        _fail("metrics source must be a JSON object")
    # raw registry snapshot, or a report / ledger record wrapping one
    snapshot = obj if "counters" in obj or "gauges" in obj else obj.get("metrics")
    if not isinstance(snapshot, dict):
        _fail("no metrics found (expected a snapshot, report, or run record)")
    sys.stdout.write(prometheus_exposition(snapshot, labels=labels or None))
    return 0


# JSON-line request fields accepted by `serve` (the engine's QueryRequest
# minus in-process-only `graph`)
_SERVE_FIELDS = (
    "id", "dataset", "file", "op", "algorithm", "hub_count",
    "backend", "workers", "timeout", "edges",
)


def _parse_request_line(line: str):
    """Parse one JSON-lines request; returns ``(request, error_message)``."""
    from repro.serve import QueryRequest

    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, f"malformed JSON: {exc}"
    if not isinstance(obj, dict):
        return None, f"request must be a JSON object, got {type(obj).__name__}"
    unknown = sorted(set(obj) - set(_SERVE_FIELDS) - {"op"})
    if unknown:
        return None, f"unknown request field(s): {', '.join(unknown)}"
    request = QueryRequest(**{k: obj[k] for k in _SERVE_FIELDS if k in obj})
    if request.op == "stats":
        # answered by the serve loop itself, never submitted to the engine
        return request, None
    try:
        request.validate()
    except (TypeError, ValueError) as exc:
        return None, str(exc)
    return request, None


def _error_response(line_obj: str, message: str) -> dict:
    """Stable-field-order error response for one bad request line."""
    request_id = op = None
    try:
        obj = json.loads(line_obj)
        if isinstance(obj, dict):
            request_id = obj.get("id")
            op = obj.get("op")
    except json.JSONDecodeError:
        pass
    return {
        "id": request_id,
        "ok": False,
        "op": op or "count",
        "status": "error",
        "error": message,
    }


def _stats_response(engine, request_id) -> dict:
    stats = engine.stats()
    return {
        "id": request_id,
        "ok": True,
        "op": "stats",
        "status": "ok",
        "stats": stats,
    }


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import (
        JsonlExporter,
        PrometheusFileExporter,
        PrometheusHTTPExporter,
        TelemetryBus,
        set_bus,
    )
    from repro.serve import QueryEngine, StructureCache

    if args.cache_bytes < 1:
        _fail("--cache-bytes must be >= 1")
    if args.cache_entries < 1:
        _fail("--cache-entries must be >= 1")
    if args.max_queue < 1:
        _fail("--max-queue must be >= 1")
    if args.max_batch < 1:
        _fail("--max-batch must be >= 1")
    if args.slow_query_ms is not None and args.slow_query_ms <= 0:
        _fail("--slow-query-ms must be > 0")
    if args.metrics_interval <= 0:
        _fail("--metrics-interval must be > 0")
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        _fail("--metrics-port must be in [0, 65535]")
    if args.profile_interval_ms <= 0:
        _fail("--profile-interval-ms must be > 0")
    if args.profile_window <= 0:
        _fail("--profile-window must be > 0")
    if args.input and not os.path.exists(args.input):
        _fail(f"no such file: {args.input}")
    stream = open(args.input, encoding="utf-8") if args.input else sys.stdin

    def emit(obj: dict) -> None:
        print(json.dumps(obj), flush=True)

    served = 0
    with use_registry() as registry:
        cache = StructureCache(
            max_bytes=args.cache_bytes,
            max_entries=args.cache_entries,
            share=args.share,
        )
        engine = QueryEngine(
            cache,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            backend=args.backend,
            workers=args.workers,
            default_timeout=args.timeout,
            slow_query_s=(
                args.slow_query_ms / 1e3 if args.slow_query_ms is not None else None
            ),
        )
        # live exposers: snapshot pollers run off the registry directly,
        # the JSONL event stream rides the telemetry bus
        exposers = []
        telemetry = None
        if args.metrics_file:
            exposers.append(PrometheusFileExporter(
                registry, args.metrics_file, interval_s=args.metrics_interval,
            ))
        if args.metrics_port is not None:
            http_exposer = PrometheusHTTPExporter(registry, port=args.metrics_port)
            exposers.append(http_exposer)
            print(
                f"serving metrics at http://127.0.0.1:{http_exposer.port}/metrics",
                file=sys.stderr,
            )
        if args.events_output:
            telemetry = TelemetryBus((JsonlExporter(args.events_output),))
            set_bus(telemetry)
        continuous = None
        if args.profile:
            from repro.obs.profiler import ContinuousProfiler

            continuous = ContinuousProfiler(
                registry,
                interval_s=args.profile_interval_ms / 1e3,
                window_s=args.profile_window,
            ).start()
        try:
            engine.start()
            if args.pipeline:
                served = _serve_pipelined(engine, stream, emit, args.max_queue)
            else:
                served = _serve_sequential(engine, stream, emit)
        finally:
            engine.stop()
            if continuous is not None:
                continuous.close()
                sampled = registry.counter("profiler.samples").value
                print(
                    f"profiler: {int(sampled)} samples over "
                    f"{continuous.windows_published} window(s)",
                    file=sys.stderr,
                )
            if telemetry is not None:
                set_bus(None)
                telemetry.close()
                print(
                    f"wrote event stream to {args.events_output}", file=sys.stderr
                )
            for exposer in exposers:
                exposer.close()
            stats = cache.stats()
            cache.clear()  # unlink any --share segments before exit
            if args.input:
                stream.close()
        print(
            f"served {served} request(s): {stats['hits']} hit / "
            f"{stats['misses']} miss / {stats['evicting_misses']} eviction "
            f"({stats['entries']} entries, {stats['bytes']:,} bytes resident)",
            file=sys.stderr,
        )
        if args.metrics_output:
            with open(args.metrics_output, "w", encoding="utf-8") as fh:
                json.dump(registry.family("serve"), fh, indent=2)
                fh.write("\n")
            print(f"wrote serve metrics to {args.metrics_output}", file=sys.stderr)
    return 0


def _serve_sequential(engine, stream, emit) -> int:
    """One request in, one response out — no cross-request batching."""
    served = 0
    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        served += 1
        request, error = _parse_request_line(line)
        if error is not None:
            emit(_error_response(line, error))
            continue
        if request.op == "stats":
            emit(_stats_response(engine, request.id))
            continue
        result = engine.query(request)
        emit(result.to_json_dict())
    return served


def _serve_pipelined(engine, stream, emit, window: int) -> int:
    """Submit up to ``window`` requests before collecting, so same-graph
    neighbours coalesce into micro-batches; responses keep input order."""
    from repro.serve import QueueFullError

    served = 0
    pending: list = []  # (ticket | dict) in input order

    def flush() -> None:
        for item in pending:
            emit(item.result().to_json_dict() if hasattr(item, "result") else item)
        pending.clear()

    for line in stream:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        served += 1
        request, error = _parse_request_line(line)
        if error is not None:
            pending.append(_error_response(line, error))
            continue
        if request.op == "stats":
            flush()  # stats reflect every request submitted before it
            emit(_stats_response(engine, request.id))
            continue
        try:
            pending.append(engine.submit(request))
        except QueueFullError as exc:
            pending.append(_error_response(line, str(exc)))
        if len(pending) >= window:
            flush()
    flush()
    return served


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profiler import SamplingProfiler
    from repro.obs.profexport import (
        render_top_table,
        span_path_index,
        write_collapsed,
        write_speedscope,
    )

    if args.interval_ms <= 0:
        _fail("--interval-ms must be > 0")
    if args.top < 1:
        _fail("--top must be >= 1")
    if args.repeat < 1:
        _fail("--repeat must be >= 1")
    backend = args.backend
    workers = args.workers
    if (backend or workers) and args.algorithm != "lotus":
        _fail(
            f"--backend/--workers select the LOTUS phase-1 backend; "
            f"not supported for --algorithm {args.algorithm}"
        )
    if workers is not None and workers < 1:
        _fail("--workers must be >= 1")
    graph = _load_graph(args)
    label = args.dataset or os.path.basename(args.file)

    def run():
        if backend or workers:
            config = LotusConfig(hub_count=args.hub_count) if args.hub_count else None
            return count_triangles_lotus(
                graph, config, backend=backend or "auto", workers=workers
            )
        return ALGORITHMS[args.algorithm](graph, args.hub_count)

    with use_registry() as registry:
        with SamplingProfiler(
            interval_s=args.interval_ms / 1e3, profile_memory=args.memory
        ) as profiler:
            # the count:<label> root is what samples attribute to when the
            # algorithm is between its own finer-grained spans
            with registry.span(
                "count:" + label, algorithm=args.algorithm, repeat=args.repeat
            ) as root:
                results = [run() for _ in range(args.repeat)]
                root.set("triangles", int(results[0].triangles))
        profile = profiler.profile
        if len({r.triangles for r in results}) != 1:
            _fail(f"profiled runs diverged: {[r.triangles for r in results]}")
        span_index = span_path_index(registry.roots)

    print(f"graph: {graph}")
    print(f"algorithm: {results[0].algorithm}")
    print(f"triangles: {results[0].triangles:,}")
    if args.memory and root.attrs.get("mem_peak") is not None:
        print(
            f"memory: peak +{root.attrs['mem_peak']:,} bytes, "
            f"delta {root.attrs['mem_delta']:+,} bytes over count:{label}"
        )
    print(render_top_table(profile, args.top), end="")
    if args.folded:
        write_collapsed(profile, args.folded, span_index)
        print(f"wrote folded stacks to {args.folded}", file=sys.stderr)
    if args.speedscope:
        write_speedscope(
            profile, args.speedscope, name=f"repro profile: {label}",
            span_index=span_index,
        )
        print(f"wrote speedscope profile to {args.speedscope}", file=sys.stderr)
    if args.ledger:
        record = build_run_record(
            registry,
            command="profile",
            config={
                "command": "profile",
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "file": args.file,
                "hub_count": args.hub_count,
                "backend": backend,
                "workers": workers,
                "interval_ms": args.interval_ms,
                "repeat": args.repeat,
                "memory": bool(args.memory),
            },
            graph=graph,
            dataset_name=args.dataset,
            meta={
                "algorithm": results[0].algorithm,
                "triangles": int(results[0].triangles),
                "elapsed": float(results[0].elapsed),
            },
            profile=profile.summary(),
        )
        ledger = Ledger(args.ledger)
        run_id = ledger.append(record)
        print(f"recorded run {run_id} -> {ledger.path}", file=sys.stderr)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.dynamic import DynamicGraph, parse_stream, replay_stream
    from repro.dynamic.replay import print_trajectory
    from repro.tc.forward import count_triangles_forward
    from repro.tc.intersect import INTERSECT_KERNELS

    if args.batch < 1:
        _fail("--batch must be >= 1")
    if args.compact_every is not None and args.compact_every < 1:
        _fail("--compact-every must be >= 1")
    if args.kernel not in INTERSECT_KERNELS:
        _fail(f"unknown kernel {args.kernel!r}; one of {sorted(INTERSECT_KERNELS)}")
    if args.metrics_interval <= 0:
        _fail("--metrics-interval must be > 0")
    graph = _load_graph(args)
    if not os.path.exists(args.stream):
        _fail(f"no such file: {args.stream}")
    try:
        ops = parse_stream(args.stream)
    except ValueError as exc:
        _fail(f"cannot parse {args.stream}: {exc}")
    if not ops:
        _fail(f"{args.stream} holds no update ops")

    with use_registry() as registry:
        exposer = None
        if args.metrics_file:
            from repro.obs.telemetry import PrometheusFileExporter

            exposer = PrometheusFileExporter(
                registry, args.metrics_file, interval_s=args.metrics_interval
            )
        try:
            dyn = DynamicGraph(
                graph,
                kernel=args.kernel,
                track_hubs=args.track_hubs,
                auto_compact_fraction=None if args.compact_every else 0.25,
            )
            base_triangles = dyn.triangles
            on_batch = (
                (lambda e: print_trajectory(e, sys.stderr))
                if args.progress
                else None
            )
            report = replay_stream(
                dyn,
                ops,
                batch=args.batch,
                compact_every=args.compact_every,
                on_batch=on_batch,
            )
        finally:
            if exposer is not None:
                exposer.close()  # final snapshot lands in --metrics-file

    print(f"graph: {graph}")
    print(f"stream: {args.stream} ({report.ops} ops)")
    print(
        f"applied {report.applied} / rejected {report.rejected} over "
        f"{report.batches} batches ({report.compactions} compactions)"
    )
    print(f"triangles: {base_triangles:,} -> {report.final_triangles:,} "
          f"(v{report.final_version})")
    print(
        f"elapsed: {report.elapsed_seconds:.3f}s "
        f"({report.per_update_seconds * 1e6:.1f}us per applied update)"
    )
    if args.verify:
        recount = int(count_triangles_forward(dyn.snapshot().graph).triangles)
        if recount != dyn.triangles:
            _fail(
                f"incremental count {dyn.triangles:,} != full recount "
                f"{recount:,} after replay"
            )
        print(f"verified: incremental count equals full recount ({recount:,})")
        if args.track_hubs:
            dyn.hubs.validate()
            print(
                f"verified: H2H patched exactly "
                f"({dyn.hubs.rethresholds} rethreshold(s))"
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote replay report to {args.json}", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.serve import QueryEngine, QueryRequest, StructureCache

    if args.dataset and args.dataset not in DATASETS:
        _fail(f"unknown dataset {args.dataset!r}; see `repro datasets`")
    if args.file and not os.path.exists(args.file):
        _fail(f"no such file: {args.file}")
    if not args.dataset and not args.file:
        _fail("specify --dataset NAME or --file PATH")
    if args.warm < 0:
        _fail("--warm must be >= 0")

    def request() -> "QueryRequest":
        return QueryRequest(
            dataset=args.dataset,
            file=args.file,
            algorithm=args.algorithm,
            hub_count=args.hub_count,
            backend=args.backend,
            workers=args.workers,
            timeout=args.timeout,
            id=args.id,
        )

    with use_registry():
        with QueryEngine(
            StructureCache(), backend=args.backend, workers=args.workers
        ) as engine:
            for _ in range(args.warm):
                warm = engine.query(request())
                if warm.status != "ok":
                    _fail(f"warm-up query failed: {warm.error or warm.status}")
            result = engine.query(request())
    print(json.dumps(result.to_json_dict()))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LOTUS triangle counting reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("count", help="count triangles")
    _add_graph_args(p)
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="lotus")
    p.add_argument("--hub-count", type=int, default=None)
    p.add_argument("--backend",
                   choices=("auto", "sequential", "threads", "processes",
                            "distributed"),
                   default=None,
                   help="LOTUS execution backend (default: sequential; all "
                        "backends are bit-identical; 'distributed' shards the "
                        "whole count across worker processes)")
    p.add_argument("--workers", type=int, default=None,
                   help="thread/process pool size for --backend (default: 4)")
    p.add_argument("--shards", type=int, default=None,
                   help="shard count for --backend distributed (default: 2)")
    p.add_argument("--partitioner", choices=("hash", "block", "degree"),
                   default=None,
                   help="vertex partitioner for --backend distributed "
                        "(default: hash)")
    p.add_argument("--trace", action="store_true",
                   help="run under the obs registry and append a "
                        "provenance-stamped record to the run ledger")
    p.add_argument("--ledger", metavar="DIR", default=DEFAULT_LEDGER_DIR,
                   help="run-ledger directory for --trace (default: runs/)")
    p.set_defaults(fn=cmd_count)

    p = sub.add_parser(
        "report", help="run one algorithm and emit a structured obs report"
    )
    _add_graph_args(p)
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="lotus")
    p.add_argument("--hub-count", type=int, default=None)
    p.add_argument("--format", choices=("json", "csv", "tree"), default="json")
    p.add_argument("--output", help="write the artifact here instead of stdout")
    p.add_argument("--memsim", action="store_true",
                   help="also replay the cache hierarchy and export hit rates")
    p.add_argument("--machine", choices=("SkyLakeX", "Haswell", "Epyc"),
                   default="SkyLakeX")
    p.add_argument("--scale", type=int, default=1024,
                   help="cache capacity scale factor (DESIGN.md §1)")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="also append the run to this run-ledger directory")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("analyze", help="hub analytics (Table 1 style)")
    _add_graph_args(p)
    p.add_argument("--hub-fraction", type=float, default=0.01)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("datasets", help="list the synthetic dataset registry")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help="e.g. table1, table5, fig4, fig9")
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("simulate", help="cache replay (Figure 4 style)")
    _add_graph_args(p)
    p.add_argument("--machine", choices=("SkyLakeX", "Haswell", "Epyc"),
                   default="SkyLakeX")
    p.add_argument("--scale", type=int, default=1024,
                   help="cache capacity scale factor (DESIGN.md §1)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "locality", help="per-region cache/TLB attribution report"
    )
    _add_graph_args(p)
    p.add_argument("--machine", choices=("SkyLakeX", "Haswell", "Epyc"),
                   default="SkyLakeX")
    p.add_argument("--scale", type=int, default=1024,
                   help="cache capacity scale factor (DESIGN.md §1)")
    p.add_argument("--algorithm", choices=("forward", "lotus", "both"),
                   default="both")
    p.add_argument("--format", choices=("json", "table"), default="table")
    p.add_argument("--output", help="write the report here instead of stdout")
    p.add_argument("--reuse-limit", type=int, default=200_000,
                   help="trace prefix length for reuse-distance profiling")
    p.set_defaults(fn=cmd_locality)

    p = sub.add_parser(
        "runs", help="run ledger: list / show / diff / export recorded runs"
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _add_ledger_arg(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--ledger", metavar="DIR", default=DEFAULT_LEDGER_DIR,
                        help="run-ledger directory (default: runs/)")

    sp = runs_sub.add_parser("list", help="list recorded runs")
    _add_ledger_arg(sp)
    sp.set_defaults(fn=cmd_runs_list)

    sp = runs_sub.add_parser("show", help="show one run record")
    sp.add_argument("run", help="run id, unique prefix, latest, or latest~N")
    sp.add_argument("--format", choices=("summary", "json"), default="summary")
    _add_ledger_arg(sp)
    sp.set_defaults(fn=cmd_runs_show)

    sp = runs_sub.add_parser(
        "diff", help="aligned per-metric / per-span deltas between two runs"
    )
    sp.add_argument("run_a", help="baseline run reference")
    sp.add_argument("run_b", help="candidate run reference")
    sp.add_argument("--rel-tol", type=float, default=None,
                    help="relative tolerance for count metrics "
                         "(default: repro.obs.regress default)")
    sp.add_argument("--share-tol", type=float, default=None,
                    help="absolute tolerance for shares/gauges")
    sp.add_argument("-v", "--verbose", action="store_true",
                    help="also list non-regressed metrics")
    _add_ledger_arg(sp)
    sp.set_defaults(fn=cmd_runs_diff)

    sp = runs_sub.add_parser(
        "export", help="export one run (Chrome trace_event JSON or raw record)"
    )
    sp.add_argument("run", help="run id, unique prefix, latest, or latest~N")
    sp.add_argument("--format", choices=("trace", "record"), default="trace")
    sp.add_argument("--output", help="write here instead of stdout")
    _add_ledger_arg(sp)
    sp.set_defaults(fn=cmd_runs_export)

    p = sub.add_parser(
        "serve", help="JSON-lines query loop over a warm structure cache"
    )
    p.add_argument("--input", metavar="FILE",
                   help="read request lines from FILE instead of stdin")
    p.add_argument("--cache-bytes", type=int, default=256 << 20,
                   help="structure-cache byte budget (default: 256 MiB)")
    p.add_argument("--cache-entries", type=int, default=8,
                   help="structure-cache entry budget (default: 8)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="submission-queue capacity (default: 64)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size bound (default: 8)")
    p.add_argument("--backend",
                   choices=("auto", "sequential", "threads", "processes",
                            "distributed"),
                   default=None,
                   help="default LOTUS backend for queries ('distributed' "
                        "shards each count across --workers processes)")
    p.add_argument("--workers", type=int, default=None,
                   help="default pool/shard size for --backend")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-request deadline in seconds")
    p.add_argument("--share", action="store_true",
                   help="keep cached structures in shared memory so the "
                        "process backend skips the per-dispatch copy")
    p.add_argument("--pipeline", action="store_true",
                   help="submit a window of requests before responding so "
                        "same-graph neighbours coalesce into micro-batches "
                        "(responses keep input order)")
    p.add_argument("--metrics-output", metavar="FILE",
                   help="write the serve.* metrics snapshot here on exit")
    p.add_argument("--metrics-file", metavar="FILE",
                   help="continuously re-export live metrics here in "
                        "Prometheus text format (atomic replace)")
    p.add_argument("--metrics-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="--metrics-file refresh interval (default: 1.0)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="also serve live metrics over HTTP on 127.0.0.1:PORT "
                        "(0 picks an ephemeral port, printed to stderr)")
    p.add_argument("--events-output", metavar="FILE",
                   help="stream telemetry events (span open/close, counter "
                        "increments, slow queries) here as JSON lines")
    p.add_argument("--slow-query-ms", type=float, default=None,
                   metavar="MS",
                   help="emit a slow_query event for requests whose latency "
                        "exceeds MS milliseconds (needs --events-output)")
    p.add_argument("--profile", action="store_true",
                   help="run the continuous sampling profiler: rolling-"
                        "window profiles feed the profiler.* counters "
                        "(scraped by --metrics-file/--metrics-port) and "
                        "profile events on --events-output")
    p.add_argument("--profile-window", type=float, default=5.0,
                   metavar="SECONDS",
                   help="profile window length for --profile (default: 5.0)")
    p.add_argument("--profile-interval-ms", type=float, default=10.0,
                   metavar="MS",
                   help="sampling interval for --profile (default: 10)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "metrics", help="render recorded metrics in Prometheus text format"
    )
    p.add_argument("--input", metavar="FILE",
                   help="metrics source: a raw snapshot, an obs report, or "
                        "a ledger run record (JSON)")
    p.add_argument("--run", metavar="REF",
                   help="render a ledger run's metrics (run id, unique "
                        "prefix, latest, or latest~N)")
    p.add_argument("--ledger", metavar="DIR", default=DEFAULT_LEDGER_DIR,
                   help="run-ledger directory for --run (default: runs/)")
    p.add_argument("--label", action="append", default=[], metavar="K=V",
                   help="attach a constant label to every sample "
                        "(repeatable)")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "profile",
        help="run a count under the span-attributed sampling profiler",
    )
    _add_graph_args(p)
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="lotus")
    p.add_argument("--hub-count", type=int, default=None)
    p.add_argument("--backend", choices=("auto", "sequential", "threads", "processes"),
                   default=None,
                   help="LOTUS phase-1 backend; with processes, workers run "
                        "their own samplers and their frames are stitched "
                        "under the parent phase-1 span")
    p.add_argument("--workers", type=int, default=None,
                   help="thread/process pool size for --backend (default: 4)")
    p.add_argument("--interval-ms", type=float, default=10.0, metavar="MS",
                   help="sampling interval in milliseconds (default: 10)")
    p.add_argument("--repeat", type=int, default=1,
                   help="profiled repetitions of the count (default: 1; "
                        "raise it to accumulate samples on small graphs)")
    p.add_argument("--memory", action="store_true",
                   help="also account tracemalloc memory per span "
                        "(mem_delta/mem_peak span attrs; slows the run)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows in the hot-frame table (default: 10)")
    p.add_argument("--folded", metavar="FILE",
                   help="write collapsed stacks (flamegraph.pl input) here")
    p.add_argument("--speedscope", metavar="FILE",
                   help="write a speedscope JSON profile here")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="also append a run record (with a profile digest) "
                        "to this run-ledger directory")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "replay",
        help="stream an edge-update file through a dynamic graph and "
             "report the triangle-count trajectory",
    )
    _add_graph_args(p)
    p.add_argument("--stream", required=True, metavar="FILE",
                   help="update stream: `u v`, `ts u v`, `op u v` or "
                        "`ts op u v` per line (op: +/-/insert/delete)")
    p.add_argument("--batch", type=int, default=64,
                   help="updates applied per batch (default: 64)")
    p.add_argument("--compact-every", type=int, default=None, metavar="N",
                   help="fold overlays into the base CSR every N batches "
                        "(default: automatic, at 25%% overlay growth)")
    p.add_argument("--kernel", default="binary",
                   help="intersect kernel for per-edge deltas "
                        "(default: binary)")
    p.add_argument("--track-hubs", action="store_true",
                   help="incrementally patch the LOTUS hub set + H2H bit "
                        "array during the replay")
    p.add_argument("--verify", action="store_true",
                   help="recount the final graph from scratch and fail "
                        "unless it matches the incremental count")
    p.add_argument("--progress", action="store_true",
                   help="print one trajectory line per batch to stderr")
    p.add_argument("--json", metavar="FILE",
                   help="write the full replay report (trajectory "
                        "included) here as JSON")
    p.add_argument("--metrics-file", metavar="FILE",
                   help="continuously export live dynamic.* metrics here "
                        "in Prometheus text format (atomic replace)")
    p.add_argument("--metrics-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="--metrics-file refresh interval (default: 1.0)")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser(
        "query", help="one-shot query through the engine (warm cache first)"
    )
    _add_graph_args(p)
    p.add_argument("--algorithm",
                   choices=("lotus", "forward", "forward-hashed",
                            "edge-iterator", "node-iterator", "block"),
                   default="lotus")
    p.add_argument("--hub-count", type=int, default=None)
    p.add_argument("--backend",
                   choices=("auto", "sequential", "threads", "processes",
                            "distributed"),
                   default=None)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--warm", type=int, default=1,
                   help="cache-warming queries before the reported one "
                        "(default: 1; 0 measures the cold path)")
    p.add_argument("--id", default=None, help="request id echoed in the result")
    p.set_defaults(fn=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
