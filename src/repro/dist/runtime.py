"""Real sharded execution of LOTUS triangle counting.

``N`` worker processes each own one partition of the vertex set (any of
the :data:`~repro.dist.partition.PARTITIONERS`).  A worker holds only
its shard's sub-CSR — the rank-oriented rows of its owned apexes — plus
replicated O(n) metadata (the shard map and ``hub_count``); remote rows
are never copied.  The vertices a shard references but does not own are
its ghost (halo) set: it knows their rank and hub bit, and resolves
adjacency questions about them over the wire.

The protocol is two coordinator-routed barrier rounds over
``multiprocessing`` pipes (deadlock-free because every shard sends every
stage message, even when empty):

1. each shard enumerates the wedges of its owned apexes, answers the
   checks whose middle vertex it also owns, and sends one batch of
   8-byte arc keys per remote target shard to the coordinator;
2. the coordinator routes the batches; targets answer membership with
   one vectorised ``searchsorted`` and the boolean vectors flow back the
   same way.  The requesting shard classifies its hits (HHH/HHN/HNN/NNN
   from replicated metadata alone) and reports per-phase counts.

The orientation is the exact LOTUS relabeling (``ra`` + ``hub_count``
from :class:`~repro.core.structure.LotusConfig`), so the merged
per-phase counts are identical to the sequential
:class:`~repro.core.count.LotusCounts` decomposition — not just the
total.

Robustness mirrors :mod:`repro.parallel.procpool`: ``fault_shard``
injects a hard crash (``os._exit(FAULT_EXIT_CODE)``), which the
coordinator surfaces as a structured :class:`ShardFailedError` after
draining surviving shards' telemetry; ``deadline_s`` propagates an
absolute deadline into every worker, which aborts between protocol
stages, and the coordinator raises ``TimeoutError``.  With an enabled
registry each shard records real worker-side spans (``shard`` with
``enumerate``/``exchange``/``tally`` children) that are stitched under
the coordinator's ``distributed`` span, and the run emits the ``dist.*``
metric family (shard edge counts, boundary-edge ratio, local/remote
checks, bytes exchanged).
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass

import numpy as np

from repro.core.count import LotusCounts
from repro.core.structure import LotusConfig
from repro.dist.partition import PARTITIONERS
from repro.dist.plan import (
    ShardPlan,
    build_plan,
    count_hubs,
    lotus_rank,
    match_keys,
    wedge_chunks,
)
from repro.graph.csr import CSRGraph
from repro.obs import get_registry
from repro.obs.telemetry import TraceContext, stitch_worker_payloads
from repro.parallel.procpool import FAULT_EXIT_CODE, _preferred_context

__all__ = [
    "ShardFailedError",
    "DistributedRunResult",
    "run_distributed_count",
    "resolve_partitioner",
]

# coordinator/worker poll granularity and post-crash telemetry drain
_POLL_S = 0.05
_TELEMETRY_DRAIN_S = 10.0

# CLI-friendly aliases for PARTITIONERS keys
_PARTITIONER_ALIASES = {"degree": "degree_balanced"}


class ShardFailedError(RuntimeError):
    """A shard process died (or exited) before completing the protocol.

    Carries the failed ``shard`` id, its ``exitcode`` (``None`` when the
    process is still alive but unresponsive) and a short ``reason``.  In
    the serve engine this fails only the computation that dispatched the
    distributed run — other cached structures and queued requests are
    untouched.
    """

    def __init__(self, shard: int, exitcode: int | None = None,
                 reason: str = "crashed") -> None:
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"shard {shard} {reason}{detail}")
        self.shard = shard
        self.exitcode = exitcode
        self.reason = reason


@dataclass(frozen=True)
class DistributedRunResult:
    """Merged outcome of one distributed count."""

    counts: LotusCounts
    shards: int
    partitioner: str
    hub_count: int
    hub_edges: int
    non_hub_edges: int
    per_shard_triangles: np.ndarray
    per_shard_arcs: np.ndarray
    boundary_edges: int
    boundary_edge_ratio: float
    local_checks: int
    remote_checks: int
    bytes_exchanged: int


def resolve_partitioner(name: str) -> str:
    """Map a CLI spelling (``degree``) onto a ``PARTITIONERS`` key."""
    name = _PARTITIONER_ALIASES.get(name, name)
    if name not in PARTITIONERS:
        known = ", ".join(sorted(PARTITIONERS) + sorted(_PARTITIONER_ALIASES))
        raise ValueError(f"unknown partitioner {name!r} (expected one of {known})")
    return name


def _deadline_hit(deadline_abs: float | None) -> bool:
    return deadline_abs is not None and time.time() > deadline_abs


def _recv_routed(conn, deadline_abs: float | None):
    """Worker-side receive with deadline polling; ``None`` on deadline."""
    while True:
        if _deadline_hit(deadline_abs):
            return None
        if conn.poll(_POLL_S):
            return conn.recv()


def _enumerate_shard(payload: dict, registry, root_span):
    """Stage 1: wedge enumeration + local membership checks.

    Returns ``(tally, stats, pending)`` where ``tally`` is the 4-slot
    per-class hit vector (index = hubs among the wedge), ``stats`` the
    check/byte counters, and ``pending`` the per-target query keys and
    their precomputed classes awaiting remote answers.
    """
    shard = payload["shard"]
    workers = payload["workers"]
    n = payload["num_vertices"]
    hub_count = payload["hub_count"]
    owner = payload["owner"]
    apexes = payload["apexes"]
    row_indptr = payload["row_indptr"]
    row_indices = payload["row_indices"].astype(np.int64, copy=False)

    own_keys = apexes.repeat(np.diff(row_indptr)) * n + row_indices
    tally = np.zeros(4, dtype=np.int64)
    local_checks = 0
    query_parts: list[list[np.ndarray]] = [[] for _ in range(workers)]
    class_parts: list[list[np.ndarray]] = [[] for _ in range(workers)]

    with registry.span("enumerate", parent=root_span, shard=shard) as span:
        wedges = 0
        for a, b, c in wedge_chunks(row_indptr, row_indices, apexes):
            wedges += a.size
            target = owner[b]
            cls = count_hubs(a, b, c, hub_count)
            local = target == shard
            if local.any():
                qk = b[local] * n + c[local]
                local_checks += qk.size
                hit = match_keys(own_keys, qk)
                if hit.any():
                    tally += np.bincount(cls[local][hit], minlength=4)
            if not local.all():
                rem = ~local
                rk = b[rem] * n + c[rem]
                rcls = cls[rem]
                rtgt = target[rem]
                for t in np.unique(rtgt):
                    sel = rtgt == t
                    query_parts[t].append(rk[sel])
                    class_parts[t].append(rcls[sel])
        span.set("wedges", wedges)
        span.set("local_checks", local_checks)

    queries = {
        t: np.concatenate(parts)
        for t, parts in enumerate(query_parts)
        if parts
    }
    classes = {
        t: np.concatenate(parts)
        for t, parts in enumerate(class_parts)
        if parts
    }
    remote_checks = sum(q.size for q in queries.values())
    stats = {
        "local_checks": local_checks,
        "remote_checks": remote_checks,
        "bytes_exchanged": sum(q.nbytes for q in queries.values()),
    }
    return tally, stats, (own_keys, queries, classes)


def _run_shard(payload: dict, conn, deadline_abs, registry, root_span):
    """The full worker-side protocol; returns the shard's result dict."""
    shard = payload["shard"]
    started = time.perf_counter()
    tally, stats, (own_keys, queries, classes) = _enumerate_shard(
        payload, registry, root_span
    )
    if _deadline_hit(deadline_abs):
        return {"shard": shard, "error": "deadline"}

    with registry.span("exchange", parent=root_span, shard=shard) as span:
        conn.send(("queries", shard, queries))
        inbound = _recv_routed(conn, deadline_abs)
        if inbound is None:
            return {"shard": shard, "error": "deadline"}
        answers = {
            src: match_keys(own_keys, qk) for src, qk in inbound.items()
        }
        conn.send(("answers", shard, answers))
        mine = _recv_routed(conn, deadline_abs)
        if mine is None:
            return {"shard": shard, "error": "deadline"}
        span.set("queries_sent", stats["remote_checks"])
        span.set("queries_answered", sum(a.size for a in answers.values()))

    with registry.span("tally", parent=root_span, shard=shard) as span:
        for target, hit in mine.items():
            stats["bytes_exchanged"] += hit.nbytes
            if hit.any():
                tally += np.bincount(classes[target][hit], minlength=4)
        triangles = int(tally.sum())
        span.set("triangles", triangles)

    if root_span is not None:
        root_span.set("triangles", triangles)
        root_span.set("arcs", int(payload["row_indices"].size))
    return {
        "shard": shard,
        "nnn": int(tally[0]),
        "hnn": int(tally[1]),
        "hhn": int(tally[2]),
        "hhh": int(tally[3]),
        "triangles": triangles,
        "local_checks": stats["local_checks"],
        "remote_checks": stats["remote_checks"],
        "bytes_exchanged": stats["bytes_exchanged"],
        "wall_s": time.perf_counter() - started,
    }


def _shard_worker(
    payload: dict,
    conn,
    result_queue,
    telemetry_queue,
    trace_wire: dict | None,
    fault_shard: int | None,
    deadline_abs: float | None,
) -> None:
    """Worker entry point: run the protocol, ship result + telemetry."""
    shard = payload["shard"]
    if fault_shard == shard:
        # simulate a hard crash (segfault / OOM-kill): no cleanup, no result
        os._exit(FAULT_EXIT_CODE)
    try:
        if trace_wire is not None:
            from repro.obs.telemetry import (
                worker_payload,
                worker_telemetry_session,
            )

            with worker_telemetry_session(
                trace_wire, "shard", shard=shard, pid=os.getpid()
            ) as (wreg, wspan):
                out = _run_shard(payload, conn, deadline_abs, wreg, wspan)
            telemetry_queue.put(worker_payload(wreg, shard, os.getpid()))
        else:
            from repro.obs.registry import NULL_REGISTRY

            out = _run_shard(payload, conn, deadline_abs, NULL_REGISTRY, None)
        result_queue.put(out)
    finally:
        conn.close()


def _drain_nowait(tele_queue, payloads: list) -> None:
    if tele_queue is None:
        return
    while True:
        try:
            payloads.append(tele_queue.get_nowait())
        except queue_mod.Empty:
            return


class _Coordinator:
    """Routes stage messages between shards and polices failures."""

    def __init__(self, procs, conns, result_queue, telemetry_queue,
                 deadline_abs, registry, span):
        self.procs = procs
        self.conns = conns
        self.result_queue = result_queue
        self.telemetry_queue = telemetry_queue
        self.deadline_abs = deadline_abs
        self.registry = registry
        self.span = span
        self.telemetry_payloads: list[dict] = []
        self.results: dict[int, dict] = {}

    def _absorb_results(self, block: bool = False) -> None:
        while True:
            try:
                r = self.result_queue.get(timeout=1.0 if block else 0)
                self._note_result(r)
                block = False
            except queue_mod.Empty:
                return

    def _note_result(self, r: dict) -> None:
        if r.get("error") == "deadline":
            raise TimeoutError(
                f"shard {r['shard']} exceeded the distributed deadline"
            )
        self.results[r["shard"]] = r

    def _check_health(self, waiting_on: set[int]) -> None:
        if _deadline_hit(self.deadline_abs):
            raise TimeoutError("distributed count exceeded its deadline")
        dead = [
            s for s, p in enumerate(self.procs)
            if p.exitcode not in (None, 0) and s in waiting_on
        ]
        exited = [
            s for s, p in enumerate(self.procs)
            if p.exitcode == 0 and s in waiting_on
        ]
        if exited:
            # a clean exit without its stage message means the shard
            # reported something on the result queue (e.g. a deadline);
            # absorb before raising — a normal result may still be in
            # flight when the exit code becomes visible
            self._absorb_results(block=True)
            still = [s for s in exited if s not in self.results]
            if still:
                raise ShardFailedError(still[0], 0, reason="exited early")
        if dead:
            self._drain_survivor_telemetry(dead)
            raise ShardFailedError(dead[0], self.procs[dead[0]].exitcode)

    def _drain_survivor_telemetry(self, dead: list[int]) -> None:
        """Let survivors flush partial span trees before raising."""
        if self.telemetry_queue is None:
            return
        deadline = time.perf_counter() + _TELEMETRY_DRAIN_S
        while time.perf_counter() < deadline and any(
            p.exitcode is None
            for s, p in enumerate(self.procs)
            if s not in dead
        ):
            _drain_nowait(self.telemetry_queue, self.telemetry_payloads)
            time.sleep(_POLL_S)
        _drain_nowait(self.telemetry_queue, self.telemetry_payloads)
        stitch_worker_payloads(self.registry, self.span, self.telemetry_payloads)

    def collect_stage(self, tag: str) -> dict[int, dict]:
        """One message with ``tag`` from every shard, crash-checked."""
        out: dict[int, dict] = {}
        waiting = set(range(len(self.procs)))
        eof: set[int] = set()
        while waiting:
            progressed = False
            for s in list(waiting - eof):
                if self.conns[s].poll(0):
                    try:
                        got_tag, shard, body = self.conns[s].recv()
                    except EOFError:
                        # the shard died with its pipe end open; leave it
                        # to the health check to surface the exit code
                        eof.add(s)
                        continue
                    if got_tag != tag:  # pragma: no cover - protocol bug
                        raise RuntimeError(
                            f"shard {shard} sent {got_tag!r}, expected {tag!r}"
                        )
                    out[shard] = body
                    waiting.discard(s)
                    progressed = True
            if waiting and not progressed:
                self._absorb_results()
                self._check_health(waiting)
                time.sleep(_POLL_S)
        return out

    def route(self, per_source: dict[int, dict]) -> None:
        """Regroup ``{source: {target: data}}`` by target and deliver."""
        shards = len(self.procs)
        for target in range(shards):
            bundle = {
                src: data[target]
                for src, data in per_source.items()
                if target in data
            }
            try:
                self.conns[target].send(bundle)
            except (BrokenPipeError, OSError):
                # the target died between stages; the next collect will
                # surface the failure with its exit code
                pass

    def collect_results(self, expected: int) -> dict[int, dict]:
        """Block until ``expected`` shard results arrived (or a shard died)."""
        self._absorb_results()
        while len(self.results) < expected:
            try:
                self._note_result(self.result_queue.get(timeout=_POLL_S))
                continue
            except queue_mod.Empty:
                pass
            _drain_nowait(self.telemetry_queue, self.telemetry_payloads)
            self._check_health(
                set(range(expected)) - set(self.results)
            )
        return self.results


def _empty_result(shards: int, partitioner: str, hub_count: int,
                  plan: ShardPlan | None = None) -> DistributedRunResult:
    arcs = (
        plan.shard_arc_counts() if plan is not None
        else np.zeros(shards, dtype=np.int64)
    )
    return DistributedRunResult(
        counts=LotusCounts(0, 0, 0, 0),
        shards=shards,
        partitioner=partitioner,
        hub_count=hub_count,
        hub_edges=0,
        non_hub_edges=0,
        per_shard_triangles=np.zeros(shards, dtype=np.int64),
        per_shard_arcs=arcs,
        boundary_edges=plan.boundary_edges if plan is not None else 0,
        boundary_edge_ratio=0.0,
        local_checks=0,
        remote_checks=0,
        bytes_exchanged=0,
    )


def run_distributed_count(
    graph: CSRGraph,
    config: LotusConfig | None = None,
    shards: int = 2,
    partitioner: str = "hash",
    fault_shard: int | None = None,
    deadline_s: float | None = None,
    start_method: str | None = None,
) -> DistributedRunResult:
    """Count triangles across ``shards`` real worker processes.

    Exact for any partitioner and shard count, with per-phase counts
    identical to the sequential LOTUS decomposition.  ``fault_shard``
    (tests only) makes that shard die with ``FAULT_EXIT_CODE`` before
    doing any work; the call then raises :class:`ShardFailedError`.
    ``deadline_s`` bounds the whole run: the deadline propagates to every
    shard, workers abort between protocol stages, and ``TimeoutError``
    is raised.  Graphs without edges are answered inline — no processes
    are spawned.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    pname = resolve_partitioner(partitioner)
    config = config or LotusConfig()
    registry = get_registry()
    with registry.span(
        "distributed",
        shards=shards,
        partitioner=pname,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    ) as dspan:
        ra, hub_count = lotus_rank(graph, config)
        if graph.num_edges == 0:
            dspan.set("triangles", 0)
            return _empty_result(shards, pname, hub_count)
        owner = PARTITIONERS[pname](graph, shards)
        plan = build_plan(graph, owner, shards, rank=ra, hub_count=hub_count)
        per_shard_arcs = plan.shard_arc_counts()
        hub_edges = int(np.count_nonzero(plan.indices < hub_count))
        boundary_ratio = plan.boundary_edges / graph.num_edges

        registry.gauge("dist.shards").set(shards)
        registry.gauge("dist.boundary_edge_ratio").set(boundary_ratio)
        edges_hist = registry.histogram("dist.shard_edges")
        for count in per_shard_arcs:
            edges_hist.observe(int(count))
        dspan.set("hub_count", hub_count)
        dspan.set("boundary_edges", plan.boundary_edges)

        trace_ctx = TraceContext.from_span(dspan)
        trace_wire = trace_ctx.to_wire() if trace_ctx is not None else None
        deadline_abs = (
            time.time() + deadline_s if deadline_s is not None else None
        )

        ctx = _preferred_context(start_method)
        result_queue = ctx.Queue()
        telemetry_queue = ctx.Queue() if trace_wire is not None else None
        procs, parent_conns = [], []
        try:
            for shard in range(shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                p = ctx.Process(
                    target=_shard_worker,
                    args=(
                        plan.shard_payload(shard),
                        child_conn,
                        result_queue,
                        telemetry_queue,
                        trace_wire,
                        fault_shard,
                        deadline_abs,
                    ),
                    daemon=True,
                )
                p.start()
                child_conn.close()
                procs.append(p)
                parent_conns.append(parent_conn)

            coord = _Coordinator(
                procs, parent_conns, result_queue, telemetry_queue,
                deadline_abs, registry, dspan,
            )
            coord.route(coord.collect_stage("queries"))
            coord.route(coord.collect_stage("answers"))
            results = coord.collect_results(shards)

            if telemetry_queue is not None:
                deadline = time.perf_counter() + _TELEMETRY_DRAIN_S
                while (
                    len(coord.telemetry_payloads) < shards
                    and time.perf_counter() < deadline
                ):
                    try:
                        coord.telemetry_payloads.append(
                            telemetry_queue.get(timeout=_POLL_S)
                        )
                    except queue_mod.Empty:
                        pass
            for p in procs:
                p.join(timeout=10.0)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            for conn in parent_conns:
                conn.close()
            result_queue.close()
            if telemetry_queue is not None:
                telemetry_queue.close()

        counts = LotusCounts(
            hhh=sum(r["hhh"] for r in results.values()),
            hhn=sum(r["hhn"] for r in results.values()),
            hnn=sum(r["hnn"] for r in results.values()),
            nnn=sum(r["nnn"] for r in results.values()),
        )
        per_shard_triangles = np.array(
            [results[s]["triangles"] for s in range(shards)], dtype=np.int64
        )
        local_checks = sum(r["local_checks"] for r in results.values())
        remote_checks = sum(r["remote_checks"] for r in results.values())
        bytes_exchanged = sum(r["bytes_exchanged"] for r in results.values())

        registry.counter("dist.local_checks").add(local_checks)
        registry.counter("dist.remote_checks").add(remote_checks)
        registry.counter("dist.bytes_exchanged").add(bytes_exchanged)
        wall_hist = registry.histogram("dist.shard_wall_s")
        for s in sorted(results):
            wall_hist.observe(results[s]["wall_s"])
        stitch_worker_payloads(registry, dspan, coord.telemetry_payloads)
        dspan.set("triangles", counts.total)
        dspan.set("bytes_exchanged", bytes_exchanged)

        return DistributedRunResult(
            counts=counts,
            shards=shards,
            partitioner=pname,
            hub_count=hub_count,
            hub_edges=hub_edges,
            non_hub_edges=int(plan.indices.size - hub_edges),
            per_shard_triangles=per_shard_triangles,
            per_shard_arcs=per_shard_arcs,
            boundary_edges=plan.boundary_edges,
            boundary_edge_ratio=boundary_ratio,
            local_checks=local_checks,
            remote_checks=remote_checks,
            bytes_exchanged=bytes_exchanged,
        )
