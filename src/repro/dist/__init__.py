"""Distributed triangle counting: partitioners, simulator, and runtime.

Three layers, sharing one wedge-exchange protocol definition
(:mod:`repro.dist.plan`):

* :mod:`repro.dist.partition` — owner-array partitioners (``block`` /
  ``hash`` / ``degree_balanced``);
* :mod:`repro.dist.simulate` — single-process model: exact counts plus
  predicted communication for any partition;
* :mod:`repro.dist.runtime` — real sharded execution over
  ``multiprocessing`` worker processes, wired into
  ``count_triangles_lotus(backend="distributed")``, the CLI, and the
  serve engine.

See ``docs/dist.md`` for the protocol, failure semantics, and a worked
CLI session.
"""

from repro.dist.partition import (
    PARTITIONERS,
    partition_block,
    partition_degree_balanced,
    partition_hash,
)
from repro.dist.plan import ShardPlan, build_plan, lotus_rank
from repro.dist.runtime import (
    DistributedRunResult,
    ShardFailedError,
    resolve_partitioner,
    run_distributed_count,
)
from repro.dist.simulate import DistributedTCReport, simulate_distributed_tc

__all__ = [
    "PARTITIONERS",
    "partition_block",
    "partition_degree_balanced",
    "partition_hash",
    "ShardPlan",
    "build_plan",
    "lotus_rank",
    "DistributedRunResult",
    "ShardFailedError",
    "resolve_partitioner",
    "run_distributed_count",
    "DistributedTCReport",
    "simulate_distributed_tc",
]
