"""Shared planning layer for distributed triangle counting.

Both the simulator (:mod:`repro.dist.simulate`) and the real sharded
runtime (:mod:`repro.dist.runtime`) count the *same* wedges: orient
every edge by a rank permutation (``row(v) = {u : rank[u] < rank[v]}``),
enumerate ordered pairs ``(b, c)`` with ``b > c`` out of each apex row,
and test membership ``c in row(b)``.  A triangle is counted exactly once
— at its highest-ranked vertex (the apex).  The check ``c in row(b)`` is
answerable by whichever shard owns ``b``, which is what makes the scheme
distributable: a shard holding only its own rows resolves local checks
immediately and ships the rest as 8-byte arc keys to ``owner[b]``.

Because the simulator and the runtime share this module's wedge
enumeration and routing rule, the simulator's communication prediction
(``remote_wedge_checks`` / ``bytes_exchanged``) is a model of the
runtime *by construction* — the regression test comparing the two is a
differential test of the protocol, not of two unrelated formulas.

Everything here operates in *relabeled* ID space: vertex ``v`` of the
input graph becomes ``rank[v]``, rows are sorted ascending, and an arc
``(b, c)`` (``c < b``) is encoded as the int64 key ``b * n + c`` so
membership reduces to one vectorised ``searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "QUERY_BYTES",
    "ANSWER_BYTES",
    "ShardPlan",
    "build_plan",
    "degree_rank",
    "identity_rank",
    "lotus_rank",
    "wedge_chunks",
    "match_keys",
    "count_hubs",
]

# wire cost of one cross-shard wedge check: an int64 arc key out ...
QUERY_BYTES = 8
# ... and one membership bool back
ANSWER_BYTES = 1

# pair-enumeration chunk bound, mirroring repro.core.count._PAIR_CHUNK
_WEDGE_CHUNK = 1 << 22


def degree_rank(graph: CSRGraph) -> np.ndarray:
    """Rank permutation by descending degree (ties broken by vertex ID).

    ``rank[v]`` is ``v``'s position in descending-degree order, so hubs
    get the smallest ranks and end up inside other vertices' rows rather
    than enumerating quadratic wedge sets themselves (the Forward
    degree-ordering argument, Section 3.2).
    """
    n = graph.num_vertices
    order = np.lexsort((np.arange(n), -graph.degrees()))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    return rank


def identity_rank(num_vertices: int) -> np.ndarray:
    """The natural-order rank (no reordering)."""
    return np.arange(num_vertices, dtype=np.int64)


def lotus_rank(graph: CSRGraph, config=None) -> tuple[np.ndarray, int]:
    """The exact ``(ra, hub_count)`` pair that ``build_lotus_graph`` uses.

    The distributed runtime orients by this rank so its per-phase counts
    (HHH/HHN/HNN/NNN, classified by how many of ``{a, b, c}`` fall below
    ``hub_count``) are identical to the sequential
    :class:`~repro.core.count.LotusCounts` decomposition.
    """
    from repro.core.structure import LotusConfig
    from repro.graph.reorder import lotus_relabeling_array

    config = config or LotusConfig()
    hub_count = config.resolve_hub_count(graph.num_vertices)
    ra = lotus_relabeling_array(graph, config.head_fraction)
    return ra.astype(np.int64, copy=False), hub_count


@dataclass
class ShardPlan:
    """Rank-oriented arcs plus shard ownership, in relabeled ID space.

    ``indptr``/``indices`` are the oriented rows of *every* vertex
    (``indices`` ascending within a row); ``owner`` maps a relabeled ID
    to its shard.  ``boundary_edges`` counts input edges whose endpoints
    live on different shards (the classic edge-cut).
    """

    num_vertices: int
    num_edges: int
    workers: int
    rank: np.ndarray
    owner: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    hub_count: int | None
    boundary_edges: int

    def arc_src(self) -> np.ndarray:
        """The apex (row) ID of every stored arc."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    def arc_keys(self) -> np.ndarray:
        """All arcs as sorted int64 keys ``b * n + c``."""
        return self.arc_src() * self.num_vertices + self.indices

    def shard_arc_counts(self) -> np.ndarray:
        """Oriented arcs owned by each shard (``dist.shard_edges``)."""
        src = self.arc_src()
        if src.size == 0:
            return np.zeros(self.workers, dtype=np.int64)
        return np.bincount(self.owner[src], minlength=self.workers)

    def shard_payload(self, shard: int) -> dict:
        """Everything shard ``shard`` needs to run the wedge protocol.

        The sub-CSR covers only owned apexes; the O(n) ``owner`` array
        and ``hub_count`` are replicated so the shard can route queries
        and classify triangles without seeing any remote row.
        """
        apexes = np.flatnonzero(self.owner == shard).astype(np.int64)
        deg = np.diff(self.indptr)[apexes]
        row_indptr = np.zeros(apexes.size + 1, dtype=np.int64)
        np.cumsum(deg, out=row_indptr[1:])
        starts = self.indptr[apexes]
        take = starts.repeat(deg) + (
            np.arange(row_indptr[-1], dtype=np.int64)
            - row_indptr[:-1].repeat(deg)
        )
        return {
            "shard": int(shard),
            "workers": int(self.workers),
            "num_vertices": int(self.num_vertices),
            "hub_count": self.hub_count,
            "apexes": apexes,
            "row_indptr": row_indptr,
            "row_indices": self.indices[take],
            "owner": self.owner,
        }


def build_plan(
    graph: CSRGraph,
    owner: np.ndarray,
    workers: int,
    rank: np.ndarray | None = None,
    hub_count: int | None = None,
) -> ShardPlan:
    """Orient ``graph`` by ``rank`` and attach shard ownership.

    ``owner`` is indexed by *original* vertex ID (what the partitioners
    produce); it is permuted into relabeled space here.  ``rank`` must be
    a permutation of ``[0, n)``; ``None`` selects :func:`degree_rank`.
    """
    n = graph.num_vertices
    if workers < 1:
        raise ValueError("workers must be >= 1")
    owner = np.asarray(owner, dtype=np.int64)
    if owner.size != n:
        raise ValueError(
            f"owner array has {owner.size} entries for {n} vertices"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= workers):
        raise ValueError("owner values must lie in [0, workers)")
    if rank is None:
        rank = degree_rank(graph)
    else:
        rank = np.asarray(rank, dtype=np.int64)

    old_src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    new_src = rank[old_src]
    new_dst = rank[graph.indices.astype(np.int64, copy=False)]
    keep = new_dst < new_src
    src, dst = new_src[keep], new_dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])

    owner_new = np.empty(n, dtype=np.int64)
    owner_new[rank] = owner
    boundary = int(np.count_nonzero(owner_new[src] != owner_new[dst]))

    return ShardPlan(
        num_vertices=n,
        num_edges=graph.num_edges,
        workers=workers,
        rank=rank,
        owner=owner_new,
        indptr=indptr,
        indices=dst,
        hub_count=hub_count,
        boundary_edges=boundary,
    )


def wedge_chunks(
    indptr: np.ndarray,
    indices: np.ndarray,
    apex_ids: np.ndarray,
    chunk_pairs: int = _WEDGE_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Enumerate the oriented wedges of ``apex_ids`` in bounded chunks.

    ``indptr`` is a *compact* CSR aligned with ``apex_ids`` (row ``k``
    of ``indices`` belongs to ``apex_ids[k]``), rows ascending.  Yields
    ``(apex, b, c)`` int64 blocks of at most ``chunk_pairs`` wedges with
    ``b > c`` per element, using the closed-form triangular decode of
    :func:`repro.core.count._batched_pair_count` — no Python loop over
    vertices, and rows larger than a chunk split cleanly across chunks.
    """
    deg = (indptr[1:] - indptr[:-1]).astype(np.int64)
    pairs = deg * (deg - 1) // 2
    cum = np.cumsum(pairs)
    total = int(cum[-1]) if cum.size else 0
    row_base = cum - pairs
    indices = indices.astype(np.int64, copy=False)
    for lo in range(0, total, chunk_pairs):
        p = np.arange(lo, min(lo + chunk_pairs, total), dtype=np.int64)
        r = np.searchsorted(cum, p, side="right")
        lp = p - row_base[r]
        i = ((1.0 + np.sqrt(1.0 + 8.0 * lp)) / 2.0).astype(np.int64)
        # guard against float rounding at triangular boundaries
        tri = i * (i - 1) // 2
        over = tri > lp
        i[over] -= 1
        tri[over] = i[over] * (i[over] - 1) // 2
        j = lp - tri
        under = j >= i
        i[under] += 1
        tri[under] = i[under] * (i[under] - 1) // 2
        j[under] = lp[under] - tri[under]
        base = indptr[r]
        yield apex_ids[r], indices[base + i], indices[base + j]


def match_keys(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Vectorised membership: is each query key present in ``sorted_keys``?"""
    if sorted_keys.size == 0 or query_keys.size == 0:
        return np.zeros(query_keys.size, dtype=bool)
    pos = np.searchsorted(sorted_keys, query_keys)
    pos = np.minimum(pos, sorted_keys.size - 1)
    return sorted_keys[pos] == query_keys


def count_hubs(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, hub_count: int
) -> np.ndarray:
    """Hubs among each wedge's three vertices (relabeled IDs < hub_count).

    3 -> HHH, 2 -> HHN, 1 -> HNN, 0 -> NNN — the Figure 7 decomposition,
    computable by the requesting shard from replicated metadata alone.
    """
    return (
        (a < hub_count).astype(np.uint8)
        + (b < hub_count).astype(np.uint8)
        + (c < hub_count).astype(np.uint8)
    )
