"""Vertex partitioners: map every vertex to one of ``workers`` shards.

Three strategies, each a different point on the balance/locality
trade-off the distributed-TC literature revolves around:

* **block** — contiguous ID ranges.  Preserves whatever locality the
  vertex numbering has, but on a skewed graph whose hubs cluster in the
  ID space it concentrates nearly all work on one shard;
* **hash** — a multiplicative integer mix of the vertex ID.  Spreads
  degree mass evenly in expectation, at the price of cutting most edges;
* **degree_balanced** — greedy longest-processing-time assignment over
  vertices in descending degree order: each vertex goes to the currently
  lightest shard (ties broken by shard ID, so the result is fully
  deterministic).  Near-perfect degree balance even under power-law
  skew.

All partitioners return an ``int64`` owner array of length
``num_vertices`` with values in ``[0, workers)`` and raise
``ValueError`` for ``workers < 1``.  Empty graphs yield empty owner
arrays; ``workers > num_vertices`` simply leaves some shards empty.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "partition_block",
    "partition_hash",
    "partition_degree_balanced",
    "PARTITIONERS",
]

# 64-bit golden-ratio multiplier (splitmix64's increment): a cheap,
# platform-independent integer mix with good avalanche behaviour
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _check_workers(workers: int) -> None:
    if workers < 1:
        raise ValueError("workers must be >= 1")


def partition_block(graph: CSRGraph, workers: int) -> np.ndarray:
    """Contiguous balanced ID ranges: vertex ``v`` goes to shard
    ``v * workers // n``.  The owner array is non-decreasing."""
    _check_workers(workers)
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.arange(n, dtype=np.int64) * workers // n


def partition_hash(graph: CSRGraph, workers: int) -> np.ndarray:
    """Deterministic hashed assignment (multiplicative mix, then mod)."""
    _check_workers(workers)
    n = graph.num_vertices
    ids = np.arange(n, dtype=np.uint64)
    x = (ids + np.uint64(1)) * _HASH_MULT
    x ^= x >> np.uint64(31)
    x *= _HASH_MULT
    x ^= x >> np.uint64(29)
    return (x % np.uint64(workers)).astype(np.int64)


def partition_degree_balanced(graph: CSRGraph, workers: int) -> np.ndarray:
    """Greedy LPT over descending degrees: equalise per-shard degree mass.

    Vertices are visited in descending-degree order (ties by vertex ID)
    and each is assigned to the shard with the smallest accumulated
    degree so far (ties by shard ID).  For power-law graphs this keeps
    ``max/mean`` shard load within a few percent of 1.
    """
    _check_workers(workers)
    n = graph.num_vertices
    deg = graph.degrees()
    order = np.lexsort((np.arange(n), -deg))
    owner = np.empty(n, dtype=np.int64)
    heap = [(0, shard) for shard in range(workers)]
    for v in order:
        load, shard = heapq.heappop(heap)
        owner[v] = shard
        heapq.heappush(heap, (load + int(deg[v]), shard))
    return owner


PARTITIONERS = {
    "block": partition_block,
    "hash": partition_hash,
    "degree_balanced": partition_degree_balanced,
}
