"""Single-process model of the sharded wedge-exchange protocol.

:func:`simulate_distributed_tc` runs the exact wedge enumeration the
real runtime (:mod:`repro.dist.runtime`) distributes — same orientation,
same routing rule (``c in row(b)`` is answered by ``owner[b]``) — but in
one process, so it yields exact triangle counts *and* a faithful
prediction of what the runtime would communicate: every wedge whose
middle vertex lives on another shard is one remote check, costing
``QUERY_BYTES + ANSWER_BYTES`` on the wire.

That makes the report a differential baseline for the runtime's measured
``dist.*`` metrics (``tests/test_dist_runtime.py`` pins the two against
each other), and a cheap way to explore partitioner/shard-count
trade-offs before paying for real processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.plan import (
    ANSWER_BYTES,
    QUERY_BYTES,
    build_plan,
    degree_rank,
    identity_rank,
    match_keys,
    wedge_chunks,
)
from repro.graph.csr import CSRGraph

__all__ = ["DistributedTCReport", "simulate_distributed_tc"]


@dataclass(frozen=True)
class DistributedTCReport:
    """Outcome of one simulated distributed run.

    ``per_worker_triangles`` attributes each triangle to the shard that
    owns its apex (highest-ranked vertex) — the same attribution the
    runtime uses.  ``work_imbalance`` is max/mean of per-shard wedge
    checks; ``total_comm_edges`` is the undirected edge-cut of the
    partition; ``bytes_exchanged`` is the predicted protocol traffic.
    """

    workers: int
    triangles: int
    per_worker_triangles: np.ndarray
    per_worker_wedge_checks: np.ndarray
    total_comm_edges: int
    local_wedge_checks: int
    remote_wedge_checks: int
    bytes_exchanged: int
    work_imbalance: float
    comm_to_local_ratio: float


def simulate_distributed_tc(
    graph: CSRGraph,
    owner: np.ndarray,
    workers: int,
    degree_order: bool = True,
    rank: np.ndarray | None = None,
) -> DistributedTCReport:
    """Simulate sharded triangle counting under the ``owner`` partition.

    ``degree_order=True`` (default) orients edges by descending degree —
    the ordering that bounds per-apex wedge fan-out; ``False`` uses the
    natural vertex order.  ``rank`` overrides both with an explicit
    permutation (e.g. the LOTUS relabeling array, for apples-to-apples
    comparison with the real runtime).  Counts are exact for any
    partition and any rank.  Raises ``ValueError`` when ``owner`` has
    the wrong length or values outside ``[0, workers)``.
    """
    if rank is None:
        rank = (
            degree_rank(graph)
            if degree_order
            else identity_rank(graph.num_vertices)
        )
    plan = build_plan(graph, owner, workers, rank=rank)
    n = plan.num_vertices
    keys = plan.arc_keys()
    shard_of = plan.owner

    per_worker_triangles = np.zeros(workers, dtype=np.int64)
    per_worker_checks = np.zeros(workers, dtype=np.int64)
    remote = 0
    apex_ids = np.arange(n, dtype=np.int64)
    for a, b, c in wedge_chunks(plan.indptr, plan.indices, apex_ids):
        apex_shard = shard_of[a]
        per_worker_checks += np.bincount(apex_shard, minlength=workers)
        remote += int(np.count_nonzero(shard_of[b] != apex_shard))
        hit = match_keys(keys, b * n + c)
        if hit.any():
            per_worker_triangles += np.bincount(
                apex_shard[hit], minlength=workers
            )

    total_checks = int(per_worker_checks.sum())
    local = total_checks - remote
    imbalance = (
        float(per_worker_checks.max() / per_worker_checks.mean())
        if total_checks
        else 1.0
    )
    return DistributedTCReport(
        workers=workers,
        triangles=int(per_worker_triangles.sum()),
        per_worker_triangles=per_worker_triangles,
        per_worker_wedge_checks=per_worker_checks,
        total_comm_edges=plan.boundary_edges,
        local_wedge_checks=local,
        remote_wedge_checks=remote,
        bytes_exchanged=remote * (QUERY_BYTES + ANSWER_BYTES),
        work_imbalance=imbalance,
        comm_to_local_ratio=remote / max(1, local),
    )
