"""Distributed TC simulation and compressed topology (Sections 6.4 & 3.2).

Two library extensions grounded in the paper's related work:

* a deterministic message-passing simulator for PATRIC-style distributed
  TC, comparing partitioning strategies on load balance and
  communication volume;
* a delta+varint compressed CSX showing — per Section 3.2's coding-theory
  argument — that the LOTUS relabeling (hubs at the smallest IDs) makes
  the topology cheaper to encode.

Run:  python examples/distributed_and_compression.py
"""

from repro.dist import PARTITIONERS, simulate_distributed_tc
from repro.graph import load_dataset
from repro.graph.compress import compress_graph
from repro.graph.reorder import apply_degree_ordering, lotus_relabeling_array, relabel


def main() -> None:
    graph = load_dataset("Twtr10")
    print(f"dataset: {graph}\n")

    # --- distributed TC ---------------------------------------------------
    workers = 16
    print(f"distributed TC across {workers} simulated workers:")
    print(f"{'partitioner':<18} {'triangles':>12} {'imbalance':>10} "
          f"{'comm edges':>11} {'comm/local':>11}")
    for name, fn in sorted(PARTITIONERS.items()):
        report = simulate_distributed_tc(graph, fn(graph, workers), workers)
        print(f"{name:<18} {report.triangles:>12,} "
              f"{report.work_imbalance:>10.2f} "
              f"{report.total_comm_edges:>11,} "
              f"{report.comm_to_local_ratio:>11.2f}")

    # --- compressed topology (Section 3.2) ---------------------------------
    # a web-graph stand-in whose vertex IDs carry no degree information
    web = load_dataset("SK")
    import numpy as np

    web = relabel(web, np.random.default_rng(1).permutation(web.num_vertices))
    print(f"\ncompressed CSX of {web} (delta + varint) under relabelings:")
    raw = 4 * web.num_arcs
    variants = {
        "shuffled IDs": web,
        "lotus relabeling": relabel(web, lotus_relabeling_array(web)),
        "full degree ordering": apply_degree_ordering(web)[0],
    }
    for label, g in variants.items():
        c = compress_graph(g)
        print(f"  {label:<22} {c.data.nbytes / 1e6:6.2f} MB "
              f"({c.bytes_per_arc():.2f} B/edge vs 4.00 raw, "
              f"{100 * c.data.nbytes / raw:.0f}% of raw)")
    print("\nHubs at the smallest IDs make the most frequent neighbour IDs "
          "the cheapest varints — the measured form of the paper's "
          "coding-theory compactness argument (Section 3.2).")


if __name__ == "__main__":
    main()
