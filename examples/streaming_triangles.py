"""Streaming triangle counting with a resident hub structure (Section 6.2).

The paper proposes keeping the H2H bit array resident to count the
dominant hub-triangle class exactly in a streaming setting while
sampling the rest.  This example streams a social network edge-by-edge
through three counters and compares accuracy and memory.

Run:  python examples/streaming_triangles.py
"""

import numpy as np

from repro.graph import powerlaw_chung_lu
from repro.graph.degree import hub_mask_top_k
from repro.tc import (
    StreamingLotusCounter,
    count_triangles_matrix,
    doulion_estimate,
    reservoir_triangle_estimate,
)


def main() -> None:
    graph = powerlaw_chung_lu(10_000, 12.0, exponent=2.05, seed=7)
    exact = count_triangles_matrix(graph)
    edges = graph.edges()
    rng = np.random.default_rng(0)
    stream = edges[rng.permutation(edges.shape[0])]
    print(f"graph: {graph}, exact triangles: {exact:,}")
    print(f"stream length: {stream.shape[0]:,} edges\n")

    # --- DOULION: uniform edge sparsification --------------------------
    for p in (0.5, 0.25):
        est = doulion_estimate(graph, p, seed=1)
        print(f"DOULION p={p:<5}      estimate {est:>12,.0f}  "
              f"error {abs(est - exact) / exact:6.1%}")

    # --- TRIEST-style reservoir ----------------------------------------
    for size in (stream.shape[0] // 2, stream.shape[0] // 4):
        est = reservoir_triangle_estimate(stream, reservoir_size=size, seed=2)
        print(f"reservoir {size:>6,}    estimate {est:>12,.0f}  "
              f"error {abs(est - exact) / exact:6.1%}")

    # --- LOTUS streaming: exact hub triangles + sampled NNN -------------
    hubs = np.flatnonzero(hub_mask_top_k(graph, 200))
    print(f"\nLOTUS streaming with {hubs.size} hubs resident:")
    for keep in (1.0, 0.5, 0.25):
        counter = StreamingLotusCounter(hubs, nn_keep_prob=keep, seed=3)
        counter.update_many(stream)
        est = counter.estimate_total()
        print(f"  nn_keep={keep:<5} estimate {est:>12,.0f}  "
              f"error {abs(est - exact) / exact:6.1%}  "
              f"stored {counter.edges_stored:>7,}/{counter.edges_seen:,} edges  "
              f"(hub triangles {'exact' if keep == 1.0 else 'low-variance'}: "
              f"{counter.hub_triangles:,.0f})")

    print("\nBecause hubs create most triangles, dropping non-hub edges "
          "barely moves the estimate — the Section 6.2 precision argument.")


if __name__ == "__main__":
    main()
