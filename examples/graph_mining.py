"""Triangle-based graph mining: local counts, clustering, k-truss, cores.

Triangle counting is rarely the end goal — the paper's introduction
motivates it through mining applications.  This example runs the
library's full mining stack on one social-network stand-in:

* hub-aware local triangle counts (per-vertex Table-1 view);
* local clustering coefficients;
* k-truss decomposition (cohesive subgraph extraction);
* k-core decomposition.

Run:  python examples/graph_mining.py
"""

import numpy as np

from repro.core import LotusConfig, lotus_local_counts
from repro.graph import core_numbers, degeneracy, load_dataset
from repro.tc import (
    global_transitivity,
    k_truss,
    local_clustering_coefficients,
    truss_numbers,
)


def main() -> None:
    graph = load_dataset("LJGrp")
    print(f"dataset: {graph}")

    # --- hub-aware local triangle counts --------------------------------
    local = lotus_local_counts(graph, LotusConfig())
    hubs = local.hub_mask
    print(f"\ntriangles: {local.total:,} "
          f"(hub types: HHH={local.counts.hhh:,} HHN={local.counts.hhn:,} "
          f"HNN={local.counts.hnn:,} NNN={local.counts.nnn:,})")
    hub_share = local.per_vertex[hubs].sum() / local.per_vertex.sum()
    print(f"hubs are {hubs.mean():.1%} of vertices but hold "
          f"{hub_share:.1%} of local triangle incidences")
    top = np.argsort(-local.per_vertex)[:5]
    print("top-5 vertices by local triangles:",
          ", ".join(f"v{v}({local.per_vertex[v]:,})" for v in top))

    # --- clustering -------------------------------------------------------
    cc = local_clustering_coefficients(graph)
    print(f"\nglobal transitivity: {global_transitivity(graph):.4f}")
    print(f"mean local clustering: {cc.mean():.4f} "
          f"(hubs {cc[hubs].mean():.4f} vs non-hubs {cc[~hubs].mean():.4f})")
    print("-> hubs have low clustering despite huge triangle counts: "
          "their neighbourhoods are too large to be dense (the wedge "
          "explosion that makes TC hard).")

    # --- cohesive subgraphs ------------------------------------------------
    edges, truss = truss_numbers(graph)
    print(f"\nmax trussness: {truss.max()}")
    for k in (4, 6, max(4, int(truss.max()))):
        sub = k_truss(graph, k)
        keep = sub.degrees() > 0
        print(f"  {k}-truss: {sub.num_edges:,} edges over "
              f"{int(keep.sum()):,} vertices")

    cores = core_numbers(graph)
    print(f"\ndegeneracy: {degeneracy(graph)}; "
          f"vertices in the max core: {(cores == cores.max()).sum()}")
    in_max_core_hubs = hubs[cores == cores.max()].mean()
    print(f"hub fraction inside the max core: {in_max_core_hubs:.0%} "
          "(the dense hub sub-graph of Table 1, seen through k-cores)")


if __name__ == "__main__":
    main()
