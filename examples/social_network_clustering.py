"""Social-network analysis: transitivity and hub structure via TC.

Triangle counting powers clustering-coefficient analysis — one of the
applications the paper's introduction motivates (community structure,
social capital).  This example compares the global transitivity and hub
dominance of different network models using the LOTUS decomposition.

Run:  python examples/social_network_clustering.py
"""

import numpy as np

from repro.core import count_triangles_lotus, hub_characteristics
from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    powerlaw_chung_lu,
    watts_strogatz,
)


def transitivity(graph, triangles: int) -> float:
    """Global clustering coefficient: 3 * triangles / wedges."""
    deg = graph.degrees().astype(np.float64)
    wedges = float((deg * (deg - 1) / 2).sum())
    return 3.0 * triangles / wedges if wedges else 0.0


def main() -> None:
    networks = {
        "power-law (social-network-like)": powerlaw_chung_lu(
            15_000, 12.0, exponent=2.05, seed=1
        ),
        "preferential attachment": barabasi_albert(15_000, 6, seed=2),
        "small world (Watts-Strogatz)": watts_strogatz(15_000, 12, 0.1, seed=3),
        "uniform random (Erdos-Renyi)": erdos_renyi(15_000, 12.0 / 15_000, seed=4),
    }

    print(f"{'network':<34} {'triangles':>10} {'transitivity':>13} "
          f"{'hub-tri %':>10} {'hub-edge %':>11}")
    for name, graph in networks.items():
        result = count_triangles_lotus(graph)
        counts = result.extra["counts"]
        t = transitivity(graph, result.triangles)
        print(f"{name:<34} {result.triangles:>10,} {t:>13.4f} "
              f"{100 * counts.hub_fraction():>9.1f}% "
              f"{100 * result.extra['hub_edge_fraction']:>10.1f}%")

    print("\nTable-1 style hub analysis of the power-law network "
          "(top 1% of vertices as hubs):")
    hc = hub_characteristics(networks["power-law (social-network-like)"], 0.01)
    print(f"  hubs: {hc.num_hubs}")
    print(f"  hub edges:          {hc.hub_edges_pct:5.1f}% of all edges")
    print(f"  hub triangles:      {hc.hub_triangles_pct:5.1f}% of all triangles")
    print(f"  hub sub-graph density: {hc.relative_density:,.0f}x the full graph")
    print(f"  avoidable (fruitless) accesses: {hc.fruitless_pct:.1f}%")
    print("\nThe skewed models concentrate triangles on hubs — exactly the "
          "structure LOTUS exploits; the small-world and uniform models do not.")


if __name__ == "__main__":
    main()
