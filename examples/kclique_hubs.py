"""k-clique counting and hub dominance (the paper's future work, §7).

TC is the k = 3 case of k-clique counting; the paper anticipates that
hub dominance grows with k (each clique corner needs k-1 incident
edges).  This example measures exactly that with the LOTUS-style hub
decomposition.

Run:  python examples/kclique_hubs.py
"""

from repro.graph import powerlaw_chung_lu
from repro.tc import count_kcliques_hub


def main() -> None:
    graph = powerlaw_chung_lu(3_000, 14.0, exponent=2.0, seed=11)
    hub_count = 30  # top 1% by degree
    print(f"graph: {graph}, hubs: top {hub_count} by degree\n")
    print(f"{'k':>3} {'total cliques':>15} {'with a hub':>13} {'hub share':>10}")
    prev = 0.0
    for k in (3, 4, 5, 6):
        d = count_kcliques_hub(graph, k, hub_count=hub_count)
        print(f"{k:>3} {d['total']:>15,} {d['hub']:>13,} "
              f"{d['hub_fraction']:>9.1%}")
        assert d["hub_fraction"] >= prev - 0.02, "hub share should grow with k"
        prev = d["hub_fraction"]
    print("\nHub dominance grows with clique size — supporting the paper's "
          "conjecture that LOTUS's hub-first strategy pays off even more "
          "for k-clique counting.")


if __name__ == "__main__":
    main()
