"""Adaptive dispatch, recursive LOTUS, and parallel phase-1 execution.

Covers the Section 5.5 fallback (non-skewed graphs run Forward), the
Section 7 recursive extension, and the Squared-Edge-Tiling thread pool
(Section 4.6).

Run:  python examples/adaptive_and_parallel.py
"""

from repro.core import (
    build_lotus_graph,
    count_hhh_hhn,
    count_triangles_adaptive,
    count_triangles_lotus_recursive,
)
from repro.graph import powerlaw_chung_lu, watts_strogatz
from repro.parallel import count_hhh_hhn_parallel
from repro.util.timer import Timer


def main() -> None:
    skewed = powerlaw_chung_lu(20_000, 14.0, exponent=2.0, seed=21)
    uniform = watts_strogatz(20_000, 14, 0.1, seed=22)

    # --- adaptive dispatch (Section 5.5) --------------------------------
    print("adaptive dispatch:")
    for name, g in (("power-law", skewed), ("small-world", uniform)):
        r = count_triangles_adaptive(g)
        print(f"  {name:<12} -> {r.extra['dispatch']:<17} "
              f"{r.triangles:,} triangles in {r.elapsed:.2f}s")

    # --- recursive LOTUS (Section 7) -------------------------------------
    rec = count_triangles_lotus_recursive(skewed, min_edges=512)
    print(f"\nrecursive LOTUS: depth {rec.extra['depth']}, "
          f"{rec.triangles:,} triangles")
    for level, data in enumerate(rec.extra["levels"]):
        print(f"  level {level}: {data}")

    # --- parallel phase 1 with squared edge tiling (Section 4.6) --------
    lotus = build_lotus_graph(skewed)
    with Timer() as t_seq:
        hhh, hhn = count_hhh_hhn(lotus)
    print(f"\nphase 1 sequential: {hhh + hhn:,} triangles in {t_seq.elapsed:.2f}s")
    for threads in (2, 4):
        with Timer() as t_par:
            total = count_hhh_hhn_parallel(lotus, threads=threads, degree_threshold=64)
        assert total == hhh + hhn
        print(f"phase 1 with {threads} threads: same count in {t_par.elapsed:.2f}s")


if __name__ == "__main__":
    main()
