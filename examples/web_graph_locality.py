"""Memory-locality study on a web graph: LOTUS vs the Forward algorithm.

Replays both algorithms' exact address traces through the simulated
memory hierarchies of the paper's three machines (Table 3, scaled per
DESIGN.md) and prints the Figure 4/5 style comparison plus modelled run
times.

Run:  python examples/web_graph_locality.py
"""

from repro.core import build_lotus_graph
from repro.graph import load_dataset
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    MACHINES,
    MemoryHierarchy,
    forward_opcounts,
    forward_trace,
    lotus_opcounts,
    lotus_trace,
    modeled_seconds,
)

CACHE_SCALE = 1024  # capacity scale matching our ~1000x smaller datasets


def main() -> None:
    name = "SK"  # stand-in for the paper's SK-Domain web graph
    graph = load_dataset(name)
    print(f"dataset {name}: {graph}")

    oriented = apply_degree_ordering(graph)[0].orient_lower()
    lotus = build_lotus_graph(graph)
    traces = {
        "Forward": forward_trace(oriented),
        "Lotus": lotus_trace(lotus),
    }
    ops = {
        "Forward": forward_opcounts(oriented),
        "Lotus": lotus_opcounts(lotus),
    }

    print("\nmodelled hardware events (Figure 5):")
    for alg in ("Forward", "Lotus"):
        o = ops[alg]
        print(f"  {alg:<8} mem accesses {o.memory_accesses / 1e6:7.1f}M   "
              f"instructions {o.instructions / 1e6:8.1f}M   "
              f"branch misses {o.branch_mispredicts / 1e6:6.2f}M")

    print("\ncache replay per machine (Figure 4 + Table 5 modelled times):")
    for mach_name, machine in MACHINES.items():
        scaled = machine.scaled(CACHE_SCALE)
        stats = {}
        for alg, trace in traces.items():
            h = MemoryHierarchy(scaled)
            h.access_lines(trace)
            stats[alg] = h.stats()
        f, l = stats["Forward"], stats["Lotus"]
        tf = modeled_seconds(ops["Forward"], f, scaled).seconds_parallel
        tl = modeled_seconds(ops["Lotus"], l, scaled).seconds_parallel
        print(f"  {mach_name:<9} LLC misses: Forward {f.llc_misses:>9,} "
              f"Lotus {l.llc_misses:>9,} ({f.llc_misses / max(l.llc_misses, 1):4.1f}x)   "
              f"DTLB: {f.dtlb_misses / max(l.dtlb_misses, 1):5.1f}x   "
              f"modelled speedup {tf / tl:4.2f}x")

    print("\nEpyc's 12x larger L3 absorbs far more of Forward's misses (see "
          "its much lower absolute LLC column) — averaged over the whole "
          "dataset suite this is why the paper's Section 5.2 reports smaller "
          "Lotus speedups on Epyc (run benchmarks/bench_table5.py).")


if __name__ == "__main__":
    main()
