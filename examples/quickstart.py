"""Quickstart: count triangles with LOTUS and inspect the decomposition.

Run:  python examples/quickstart.py
"""

from repro.core import LotusConfig, count_triangles_lotus
from repro.graph import powerlaw_chung_lu
from repro.tc import count_triangles_forward


def main() -> None:
    # A power-law graph like the social networks LOTUS targets:
    # 20k vertices, average degree 14, heavy-tailed (gamma ~ 2).
    graph = powerlaw_chung_lu(20_000, 14.0, exponent=2.05, seed=42)
    print(f"graph: {graph}")

    # End-to-end LOTUS: preprocessing (Algorithm 2) + 3-phase count
    # (Algorithm 3).  The result carries the Figure-6 style breakdown.
    result = count_triangles_lotus(graph)
    counts = result.extra["counts"]
    print(f"\ntriangles: {result.triangles:,}")
    print(f"hub count: {result.extra['hub_count']:,} "
          f"({result.extra['hub_edge_fraction']:.0%} of edges are hub edges)")
    print("\ntriangle types (Figure 7 decomposition):")
    print(f"  HHH (3 hubs):          {counts.hhh:>12,}")
    print(f"  HHN (2 hubs):          {counts.hhn:>12,}")
    print(f"  HNN (1 hub):           {counts.hnn:>12,}")
    print(f"  NNN (0 hubs):          {counts.nnn:>12,}")
    print(f"  hub-triangle share:    {counts.hub_fraction():>12.1%}")

    print("\nexecution breakdown (Figure 6):")
    for phase, seconds in result.phases.items():
        print(f"  {phase:<12} {seconds * 1e3:8.1f} ms")

    # Cross-check against the Forward baseline (Algorithm 1).
    baseline = count_triangles_forward(graph)
    assert baseline.triangles == result.triangles
    print(f"\nForward baseline agrees: {baseline.triangles:,} triangles "
          f"({baseline.elapsed:.2f}s vs LOTUS {result.elapsed:.2f}s)")

    # Tuning: the hub count is configurable (the paper fixes 2^16).
    small_hubs = count_triangles_lotus(graph, LotusConfig(hub_count=64))
    print(f"with only 64 hubs, hub triangles still cover "
          f"{small_hubs.extra['counts'].hub_fraction():.0%} of the total")


if __name__ == "__main__":
    main()
