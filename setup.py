"""Setup shim enabling legacy editable installs (`pip install -e . --no-use-pep517`)
on environments without the `wheel` package; configuration lives in pyproject.toml."""

from setuptools import setup

setup()
