#!/usr/bin/env python
"""Docstring-coverage lint for the public surface of ``src/repro``.

Every public module, class, function and method (name not starting with
``_``) must carry a docstring.  Pre-existing gaps are grandfathered in
``scripts/docstring_allowlist.txt`` — one ``path:qualname`` per line —
and the list only ratchets *down*: an allowlisted symbol that gains a
docstring (or disappears) makes its entry stale, and stale entries fail
the lint so the file shrinks with the debt.

Usage::

    python scripts/check_docstrings.py               # lint
    python scripts/check_docstrings.py --regenerate  # rewrite allowlist

Exit status 0 when every non-allowlisted public symbol is documented and
no allowlist entry is stale.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
ALLOWLIST = REPO / "scripts" / "docstring_allowlist.txt"


def _public(name: str) -> bool:
    return not name.startswith("_")


def iter_undocumented(path: pathlib.Path):
    """Yield ``qualname`` for each public symbol in ``path`` missing a docstring."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield "<module>"

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}{child.name}"
                if _public(child.name) and ast.get_docstring(child) is None:
                    yield_list.append(qual)
                # descend into classes for methods, but not into function
                # bodies — nested helpers are implementation detail
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qual}.")

    yield_list: list[str] = []
    walk(tree, "")
    yield from yield_list


def collect_gaps() -> list[str]:
    """Return ``path:qualname`` for every undocumented public symbol."""
    gaps: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "__init__.py" and path.stat().st_size == 0:
            continue
        rel = path.relative_to(REPO)
        for qual in iter_undocumented(path):
            gaps.append(f"{rel}:{qual}")
    return gaps


def read_allowlist() -> set[str]:
    if not ALLOWLIST.exists():
        return set()
    entries = set()
    for line in ALLOWLIST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regenerate", action="store_true",
        help="rewrite the allowlist from the current gaps",
    )
    args = parser.parse_args(argv)

    gaps = collect_gaps()
    if args.regenerate:
        header = (
            "# Grandfathered docstring gaps — scripts/check_docstrings.py.\n"
            "# Ratchet: entries may only be removed (fix the docstring,\n"
            "# then delete the line); new code must be documented.\n"
        )
        ALLOWLIST.write_text(header + "".join(f"{g}\n" for g in gaps))
        print(f"wrote {len(gaps)} entries to {ALLOWLIST.relative_to(REPO)}")
        return 0

    allowed = read_allowlist()
    missing = [g for g in gaps if g not in allowed]
    stale = sorted(allowed - set(gaps))
    for gap in missing:
        print(f"error: undocumented public symbol: {gap}", file=sys.stderr)
    for entry in stale:
        print(
            f"error: stale allowlist entry (documented or gone — delete "
            f"the line): {entry}",
            file=sys.stderr,
        )
    checked = sum(1 for _ in SRC.rglob("*.py"))
    print(
        f"{checked} file(s) checked; {len(gaps)} gap(s), "
        f"{len(allowed)} allowlisted, {len(missing)} new, {len(stale)} stale"
    )
    return 1 if missing or stale else 0


if __name__ == "__main__":
    raise SystemExit(main())
