"""Regenerate EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only``:

    python scripts/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

# (result file stem, paper reference text, verdict commentary)
SECTIONS: list[tuple[str, str, str]] = [
    (
        "table1",
        "Table 1 — topological characteristics of hubs (top 1%). Paper "
        "averages: 72.9% hub edges, 93.4% hub triangles, relative density "
        "1809x, 53.3% fruitless accesses.",
        "Reproduced in shape: hubs capture the majority of edges, nearly "
        "all triangles, form a sub-graph hundreds of times denser than the "
        "graph, and a large share of merge-join accesses is avoidable. "
        "Absolute percentages differ because the stand-ins are ~10^3x "
        "smaller (relative density scales with |V|).",
    ),
    (
        "table4",
        "Table 4 — dataset inventory. Paper: 14 graphs, 0.22-161 B edges.",
        "Stand-in registry with matched roles (social/web/bio, plus the "
        "low-skew Friendster analogue); triangle counts are exact on the "
        "synthetic graphs.",
    ),
    (
        "table5",
        "Table 5 — end-to-end times for BBTC / GraphGrind / GAP / GBBS / "
        "Lotus on 3 machines. Paper average speedups: 19.3x / 5.5x / 3.8x "
        "/ 2.2x.",
        "Reproduced in ordering: Lotus is fastest end-to-end in measured "
        "wall-clock (BBTC and the edge iterator trail badly; "
        "Forward-family systems sit between). Modeled machine speedups "
        "land in the paper's 2-4x band. The Epyc-speedup-smallest "
        "observation (Section 5.2) reproduces on the social-network "
        "stand-ins; the web stand-ins sit in a capacity regime where "
        "LOTUS's hot set crosses the scaled Epyc L3 boundary and the "
        "model predicts the opposite sign — a scale artefact documented "
        "in DESIGN.md §6.",
    ),
    (
        "table6",
        "Table 6 — large graphs (>10B edges), GBBS vs Lotus on Epyc. "
        "Paper: Lotus 2.1x faster on average.",
        "Reproduced in the modeled times: Lotus is 1.8-2.9x faster than "
        "the Forward-family baseline on every large stand-in (paper: "
        "2.1x average). The *wall-clock* column favours the GBBS-style "
        "implementation on these R-MAT graphs — its NumPy membership-mask "
        "kernel is unusually cheap in Python — which is precisely why the "
        "locality claims are carried by the machine model, not "
        "interpreter wall-clock (DESIGN.md §1).",
    ),
    (
        "table7",
        "Table 7 — topology size, CSX vs Lotus. Paper: average -4.1% "
        "(range -21.6% to +28.8%).",
        "Reproduced in mechanism and direction: the 2-byte HE IDs shrink "
        "the topology wherever hub edges dominate. Every stand-in shrinks "
        "(-38% to -51%) rather than the paper's mixed envelope because "
        "our H2H is proportionally far smaller than the fixed 256 MB that "
        "pushes the paper's small datasets (LJGrp +28.8%) into growth.",
    ),
    (
        "table8",
        "Table 8 — H2H density 0.15-15.3%; zero cachelines 74.6-95.2% "
        "(web) vs 5.7-62.5% (social).",
        "Density band reproduced. The web-vs-social zero-cacheline "
        "contrast is weaker: R-MAT stand-ins lack the crawler ID locality "
        "(LLP ordering) that packs the paper's web hub edges into few "
        "lines — a generator limitation noted in DESIGN.md.",
    ),
    (
        "table9",
        "Table 9 — thread idle time. Paper: edge-balanced 13.6-83.3%, "
        "squared edge tiling 0.7-3.3% (2.7x phase-1 speedup).",
        "Reproduced: edge-balanced partitions idle 18-47% of the time "
        "while squared edge tiling stays below 0.2%, at matched partition "
        "counts (2 threads-worth per heavy vertex; the paper's 256x "
        "factor is tuned to billion-edge graphs).",
    ),
    (
        "fig1",
        "Figure 1 — average end-to-end TC rate per system. Paper "
        "ordering: Lotus > GBBS ~ GAP > GraphGrind > BBTC.",
        "Reproduced: Lotus has the highest average rate; BBTC and the "
        "edge iterator are the slowest.",
    ),
    (
        "fig4",
        "Figure 4 — LLC misses (avg 2.1x, max 4.0x reduction) and DTLB "
        "misses (avg 34.6x reduction), Lotus vs Forward.",
        "Reproduced via trace replay on the scaled SkyLakeX model: LLC "
        "reductions of ~2-6x on the skewed graphs, DTLB reductions up to "
        ">100x, and no benefit on the low-skew Friendster stand-in "
        "(Section 5.5's prediction).",
    ),
    (
        "fig5",
        "Figure 5 — memory accesses 1.5x, instructions 1.7x, branch "
        "mispredictions 2.4x lower for Lotus.",
        "Reproduced in direction on every skewed dataset; our factors are "
        "larger because the op-count model excludes the C runtime's fixed "
        "overheads that dilute the paper's ratios.",
    ),
    (
        "fig6",
        "Figure 6 — execution breakdown. Paper: 19.4% preprocessing; "
        "40.4% of counting time in non-hub triangles; Friendster "
        "dominated by the non-hub phase.",
        "Reproduced in shape: preprocessing is a minor share, and the "
        "Friendster stand-in spends by far the largest fraction in the "
        "NNN phase.",
    ),
    (
        "fig7",
        "Figure 7 — 68.9% of triangles counted as hub triangles on "
        "average.",
        "Reproduced in shape: hub triangles dominate on every skewed "
        "stand-in and the low-skew Friendster analogue has by far the "
        "smallest hub share (77% vs ~99%; paper: 47.3% vs ~99%). Our "
        "average is higher than the paper's 68.9% because Friendster — "
        "the outlier that drags the paper's average down — is one of ten "
        "rather than carrying billions of edges.",
    ),
    (
        "fig8",
        "Figure 8 — 50.1% of edges processed as hub edges on average; "
        "Friendster only 7.6%.",
        "Reproduced: HE holds roughly half-to-three-quarters of the edges "
        "on skewed graphs and the smallest share on Friendster.",
    ),
    (
        "fig9",
        "Figure 9 — 1M cachelines (64MB, ~25% of H2H) satisfy >90% of H2H "
        "accesses.",
        "Reproduced in shape: the access distribution is heavily "
        "concentrated — a small fraction of the hottest cachelines covers "
        "~90% of probes.",
    ),
    (
        "ablation_h2h",
        "Section 5.7 — H2H bitmap vs hash table.",
        "The bit array probes the same stream faster and in less memory "
        "than a hash set, as the paper argues.",
    ),
    (
        "ablation_fusion",
        "Section 4.5 — separate HNN/NNN loops vs fused.",
        "Fusing the loops increases LLC misses in the replay, confirming "
        "the working-set argument for keeping them separate.",
    ),
    (
        "ablation_hubcount",
        "Sections 4.2/5.5 — the 64K hub-count choice.",
        "Sweeping the hub count shows the trade-off: hub-triangle "
        "coverage saturates while the H2H footprint grows quadratically.",
    ),
    (
        "ablation_intersect",
        "Sections 4.4.3/6.3 — intersection kernel families.",
        "All six kernels agree exactly; costs differ as the literature "
        "describes.",
    ),
    (
        "ablation_ordering",
        "Section 4.3.1 — order-preserving relabeling vs degree ordering.",
        "On a graph with planted ID locality, the LOTUS relabeling keeps "
        "a much higher NNN-phase LRU hit rate than full degree ordering.",
    ),
    (
        "ext_blocking",
        "Section 7 (future work) — blocking the HNN phase.",
        "u-blocked processing reduces phase-2 LLC misses on the web "
        "stand-ins, supporting the paper's conjecture; on small "
        "social graphs the re-streaming overhead can win instead.",
    ),
    (
        "ext_distributed",
        "Section 6.4 (related work) — distributed TC partitioning.",
        "Degree-balanced placement equalises per-worker work on skewed "
        "graphs where block partitioning idles 10x; all strategies count "
        "exactly.",
    ),
    (
        "ext_skew_sweep",
        "Section 5.5 — when is LOTUS worth it?",
        "The modeled Lotus/Forward speedup decays monotonically as the "
        "degree-distribution tail flattens and crosses ~1 near the "
        "Friendster-like regime — the crossover the adaptive dispatcher "
        "automates.",
    ),
    (
        "ext_approximate",
        "Section 6.2 — streaming/approximate TC.",
        "With hubs resident, LOTUS streaming is the most precise "
        "estimator at equal budgets, because the dominant hub-triangle "
        "class is counted (nearly) exactly.",
    ),
]

HEADER = """# EXPERIMENTS — paper vs measured

Regenerated from `benchmarks/results/` (produced by
`pytest benchmarks/ --benchmark-only`; regenerate this file with
`python scripts/generate_experiments_md.py`).

Reproduction ground rules (DESIGN.md): datasets are synthetic stand-ins
~10^3x smaller than the paper's graphs; machine models are the Table-3
configurations with capacities scaled per dataset so the
working-set/cache ratio matches the paper's regime; the reproduction
target is each result's *shape* — who wins, by roughly what factor,
where crossovers fall — not absolute numbers.

Summary verdict: every table and figure of the evaluation section
reproduces in shape, with three documented deviations — (1) the Epyc
speedup sign flips on the *web* stand-ins (capacity-regime artefact,
see Table 5 below); (2) the web-vs-social contrast of Table 8's
zero-cacheline column is weaker (R-MAT lacks crawler ID locality);
(3) DTLB/branch-miss reduction magnitudes differ from the paper's
(model excludes C-runtime dilution). Everything else — hub dominance,
the 2-6x locality win, the Epyc trend on social networks, Friendster's
outlier behaviour, squared-edge-tiling's idle-time collapse, the
compactness and streaming-precision arguments — lands where the paper
says it should.

---
"""


def main() -> None:
    parts = [HEADER]
    for stem, paper, verdict in SECTIONS:
        path = RESULTS / f"{stem}.txt"
        parts.append(f"## {stem}\n")
        parts.append(f"**Paper:** {paper}\n")
        parts.append(f"**Verdict:** {verdict}\n")
        if path.exists():
            parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
        else:
            parts.append("_(no result file — run the benchmarks first)_\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
