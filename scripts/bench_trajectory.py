#!/usr/bin/env python
"""Run the pinned benchmark-trajectory suite and write ``BENCH_<date>.json``.

The artifact (triangle counts, simulated miss totals, per-region miss
shares on every machine model) is the unit the regression gate compares:

    PYTHONPATH=src python scripts/bench_trajectory.py --quick
    PYTHONPATH=src python -m repro.obs.regress \\
        benchmarks/trajectory/BENCH_baseline.json --latest benchmarks/trajectory

``--baseline`` rewrites the committed baseline instead (do this in the
same commit as any intentional change to the tracked metrics).
See ``repro/obs/trajectory.py`` for the schema and suite definitions.

Each invocation also appends a provenance-stamped run record embedding
the full artifact to the run ledger (``--ledger DIR``, default
``runs/``; ``--no-ledger`` skips), so the regression gate can compare a
candidate against any historical measurement via
``repro.obs.regress --against-run`` (see ``docs/runs.md``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.obs.trajectory import (  # noqa: E402  (path bootstrap above)
    ALL_MACHINES,
    DEFAULT_SUITE,
    DYNAMIC_DATASET,
    DIST_DATASET,
    PROFILER_DATASET,
    QUICK_SUITE,
    SCALING_DATASET,
    SERVE_DATASET,
    TELEMETRY_DATASET,
    build_trajectory_artifact,
    write_trajectory_artifact,
)

DEFAULT_OUT = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "trajectory"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"measure only the quick suite {QUICK_SUITE}")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="directory for the BENCH_<date>.json artifact")
    parser.add_argument("--date", default=None,
                        help="override the artifact date stamp (YYYY-MM-DD)")
    parser.add_argument("--baseline", action="store_true",
                        help="write BENCH_baseline.json (the committed gate)")
    parser.add_argument("--machines", nargs="+", default=list(ALL_MACHINES),
                        choices=list(ALL_MACHINES), help="machine models to replay")
    parser.add_argument("--scaling", nargs="?", const=SCALING_DATASET,
                        default=None, metavar="DATASET",
                        help="also record the multi-worker phase-1 scaling "
                             f"run (default dataset: {SCALING_DATASET}; "
                             "simulated speedups are gated, wall-clock is "
                             "informational)")
    parser.add_argument("--serve", nargs="?", const=SERVE_DATASET,
                        default=None, metavar="DATASET",
                        help="also record a scripted serve session (default "
                             f"dataset: {SERVE_DATASET}); the serve.* keys "
                             "are timing-kind — trended, never gated")
    parser.add_argument("--telemetry-overhead", nargs="?",
                        const=TELEMETRY_DATASET, default=None,
                        metavar="DATASET",
                        help="also self-measure the telemetry overhead "
                             f"(default dataset: {TELEMETRY_DATASET}); the "
                             "on/off wall-time ratio is gated against an "
                             "absolute ceiling (see repro.obs.regress)")
    parser.add_argument("--profiler-overhead", nargs="?",
                        const=PROFILER_DATASET, default=None,
                        metavar="DATASET",
                        help="also self-measure the sampling-profiler "
                             f"overhead (default dataset: {PROFILER_DATASET}); "
                             "the on/off ratio is gated against the tighter "
                             "profiler ceiling (see repro.obs.regress)")
    parser.add_argument("--dynamic", nargs="?", const=DYNAMIC_DATASET,
                        default=None, metavar="DATASET",
                        help="also replay the pinned dynamic update stream "
                             f"(default dataset: {DYNAMIC_DATASET}); the "
                             "amortised update-vs-recount speedup is gated "
                             "as a floor and the final count exactly")
    parser.add_argument("--dist", nargs="?", const=DIST_DATASET,
                        default=None, metavar="DATASET",
                        help="also run the pinned sharded distributed count "
                             f"(default dataset: {DIST_DATASET}); the exact "
                             "count and the deterministic traffic metrics "
                             "are gated, wall-clock is informational")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default: runs/ at the "
                             "repo root)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append a run record to the ledger")
    args = parser.parse_args(argv)
    suite = QUICK_SUITE if args.quick else DEFAULT_SUITE
    started = time.perf_counter()
    artifact = build_trajectory_artifact(
        suite=suite, machines=tuple(args.machines), generated=args.date,
        scaling=args.scaling, serve=args.serve,
        telemetry_overhead=args.telemetry_overhead,
        profiler_overhead=args.profiler_overhead,
        dynamic=args.dynamic,
        dist=args.dist,
    )
    path = write_trajectory_artifact(artifact, args.out, baseline=args.baseline)
    elapsed = time.perf_counter() - started
    print(f"wrote {path} ({len(artifact['metrics'])} tracked metrics, "
          f"{elapsed:.1f}s)")
    if not args.no_ledger:
        from repro.obs.ledger import Ledger, build_run_record

        record = build_run_record(
            None,
            command="bench_trajectory"
                    + (" --quick" if args.quick else "")
                    + (" --baseline" if args.baseline else ""),
            config={
                "command": "bench_trajectory",
                "suite": list(suite),
                "machines": list(args.machines),
                "baseline": bool(args.baseline),
                "scaling": args.scaling,
                "serve": args.serve,
                "telemetry_overhead": args.telemetry_overhead,
                "profiler_overhead": args.profiler_overhead,
                "dynamic": args.dynamic,
                "dist": args.dist,
            },
            meta={"artifact_path": str(path), "elapsed": elapsed},
            artifact=artifact,
        )
        ledger = Ledger(
            args.ledger or pathlib.Path(__file__).resolve().parents[1] / "runs"
        )
        run_id = ledger.append(record)
        print(f"recorded run {run_id} -> {ledger.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
