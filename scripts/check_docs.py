#!/usr/bin/env python
"""Executable-documentation gate: link check + runnable fenced blocks.

Two passes over the repo's markdown:

1. **Link resolution** — every intra-repo markdown link in ``README.md``,
   ``*.md`` at the repo root, and ``docs/**/*.md`` must point at a file
   that exists (``#anchors`` are stripped; external ``http(s)://`` and
   ``mailto:`` links are skipped).

2. **Runnable blocks** — fenced code blocks in ``docs/*.md`` whose info
   string carries the ``run`` tag (` ```bash run ` or ` ```python run `)
   are executed from the repo root with ``PYTHONPATH=src``, against the
   tiny bundled graph in ``docs/examples/``.  A non-zero exit fails the
   gate, so a doc snippet can never silently rot.

Usage::

    python scripts/check_docs.py            # both passes
    python scripts/check_docs.py --links    # link pass only
    python scripts/check_docs.py --blocks   # runnable-block pass only

Exit status 0 when every link resolves and every runnable block exits 0.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]

# [text](target) — excludes images vacuously (![..](..) still yields a
# file target worth checking) and tolerates titles: (target "title")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^```(\S*)[ \t]*(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files() -> list[pathlib.Path]:
    files = sorted(REPO.glob("*.md"))
    files += sorted((REPO / "docs").rglob("*.md"))
    return files


def iter_links(text: str):
    """Yield (line_number, target) for every markdown link in ``text``."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links(files: list[pathlib.Path]) -> list[str]:
    """Return one error string per unresolvable intra-repo link."""
    errors: list[str] = []
    for path in files:
        for lineno, target in iter_links(path.read_text()):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            dest = target.split("#", 1)[0]
            if not dest:
                continue
            resolved = (path.parent / dest).resolve()
            if not resolved.exists():
                rel = path.relative_to(REPO)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def extract_runnable_blocks(path: pathlib.Path):
    """Yield (start_line, language, source) for every ``run``-tagged fence."""
    lang: str | None = None
    start = 0
    lines: list[str] = []
    in_block = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        fence = _FENCE_RE.match(line.strip())
        if not in_block:
            if fence and "run" in fence.group(2).split():
                in_block = True
                lang = fence.group(1) or "bash"
                start = lineno
                lines = []
        else:
            if fence and not fence.group(1) and not fence.group(2):
                yield start, lang, "\n".join(lines) + "\n"
                in_block = False
            else:
                lines.append(line)


def run_blocks(files: list[pathlib.Path]) -> list[str]:
    """Execute every runnable block; return one error string per failure."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("PYTHONHASHSEED", "0")
    errors: list[str] = []
    ran = 0
    for path in files:
        for start, lang, source in extract_runnable_blocks(path):
            rel = path.relative_to(REPO)
            if lang not in ("bash", "sh", "python"):
                errors.append(f"{rel}:{start}: unrunnable language {lang!r}")
                continue
            suffix = ".py" if lang == "python" else ".sh"
            with tempfile.NamedTemporaryFile(
                "w", suffix=suffix, delete=False
            ) as handle:
                handle.write(source)
                script = handle.name
            cmd = (
                [sys.executable, script]
                if lang == "python"
                else ["bash", "-euo", "pipefail", script]
            )
            try:
                proc = subprocess.run(
                    cmd, cwd=REPO, env=env, capture_output=True,
                    text=True, timeout=600,
                )
            except subprocess.TimeoutExpired:
                errors.append(f"{rel}:{start}: block timed out")
                continue
            finally:
                os.unlink(script)
            ran += 1
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
                errors.append(
                    f"{rel}:{start}: block exited {proc.returncode}\n    "
                    + "\n    ".join(tail)
                )
            else:
                print(f"ok: {rel}:{start} ({lang})")
    print(f"{ran} runnable block(s) executed")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true",
                        help="only check link resolution")
    parser.add_argument("--blocks", action="store_true",
                        help="only execute runnable blocks")
    args = parser.parse_args(argv)
    do_links = args.links or not args.blocks
    do_blocks = args.blocks or not args.links

    files = markdown_files()
    errors: list[str] = []
    if do_links:
        errors += check_links(files)
        print(f"{len(files)} markdown file(s) link-checked")
    if do_blocks:
        errors += run_blocks([p for p in files if p.parent == REPO / "docs"])
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
