"""Table 6: large graphs (>10B paper edges), GBBS vs Lotus on Epyc."""

import numpy as np

from repro.eval import experiments as E
from repro.graph.datasets import LARGE_SUITE

from conftest import FAST, run_experiment


def test_table6(benchmark):
    datasets = LARGE_SUITE[:2] if FAST else LARGE_SUITE
    result = run_experiment(benchmark, E.table6, datasets=datasets)
    # paper shape: Lotus beats GBBS on the large suite (avg 2.1x); in the
    # modeled numbers the advantage must hold on average
    avg_model = float(np.mean([r["Epyc modeled speedup"] for r in result.rows]))
    assert avg_model > 1.0
