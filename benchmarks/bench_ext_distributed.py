"""Extension bench: distributed TC partitioning strategies (Section 6.4).

Not a paper table — the paper cites PATRIC/VEBO for distributed TC; this
bench quantifies the trade-off its related-work section describes:
hash/block partitioning vs degree-balanced placement on a skewed graph.
"""

from repro.dist import PARTITIONERS, simulate_distributed_tc
from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset
from repro.tc import count_triangles_matrix

from conftest import run_experiment


def _experiment(dataset: str = "Twtr10", workers: int = 16) -> ExperimentResult:
    g = load_dataset(dataset)
    expected = count_triangles_matrix(g)
    rows = []
    for name, fn in sorted(PARTITIONERS.items()):
        report = simulate_distributed_tc(g, fn(g, workers), workers)
        assert report.triangles == expected
        rows.append(
            {
                "partitioner": name,
                "work imbalance (max/mean)": report.work_imbalance,
                "comm edges": report.total_comm_edges,
                "comm/local ratio": report.comm_to_local_ratio,
            }
        )
    return ExperimentResult(
        "ext_distributed",
        f"Distributed TC over {workers} workers [{dataset}]",
        rows,
        paper_reference={
            "claim": "degree-aware placement (VEBO [68]) balances load on "
            "skewed graphs; PATRIC [5] trades communication for it"
        },
    )


def test_ext_distributed(benchmark):
    result = run_experiment(benchmark, _experiment)
    by_name = {r["partitioner"]: r for r in result.rows}
    assert (
        by_name["degree_balanced"]["work imbalance (max/mean)"]
        <= by_name["block"]["work imbalance (max/mean)"]
    )
