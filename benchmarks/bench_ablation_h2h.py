"""Ablation: H2H as a triangular bit array vs a hash set (Section 5.7).

The paper argues a hash table is suboptimal for H2H: more instructions
per probe, larger footprint, higher preprocessing cost.  We compare the
bit array against a Python-set analogue on real phase-1 probe streams.
"""

import time

import numpy as np

from repro.core import build_lotus_graph
from repro.graph import load_dataset
from repro.memsim.trace import _phase1_pairs

from conftest import run_experiment
from repro.eval.harness import ExperimentResult


def _ablation(dataset: str = "Twtr10") -> ExperimentResult:
    lotus = build_lotus_graph(load_dataset(dataset))
    _, bit_idx = _phase1_pairs(lotus)

    # bit-array probes (vectorised, as in the real phase 1)
    t0 = time.perf_counter()
    data = lotus.h2h.data
    hits_bits = int(
        np.count_nonzero((data[bit_idx >> 3] >> (bit_idx & 7).astype(np.uint8)) & 1)
    )
    t_bits = time.perf_counter() - t0

    # hash-set probes over the same stream
    edge_set = set(
        np.flatnonzero(
            np.unpackbits(data, bitorder="little")[: lotus.h2h.num_bits]
        ).tolist()
    )
    t0 = time.perf_counter()
    hits_hash = sum(1 for b in bit_idx.tolist() if b in edge_set)
    t_hash = time.perf_counter() - t0

    assert hits_bits == hits_hash
    # memory: bit array bytes vs set-of-int64 footprint (~60B/entry in CPython)
    mem_bits = lotus.h2h.nbytes
    mem_hash = len(edge_set) * 60
    return ExperimentResult(
        "ablation_h2h",
        f"H2H bit array vs hash set [{dataset}]",
        rows=[
            {
                "structure": "triangular bit array",
                "probe time (s)": t_bits,
                "memory (KB)": mem_bits / 1024,
            },
            {
                "structure": "hash set",
                "probe time (s)": t_hash,
                "memory (KB)": mem_hash / 1024,
            },
        ],
        paper_reference={
            "claim": "hashing imposes more instructions per access, higher "
            "footprint and preprocessing time (Section 5.7)"
        },
    )


def test_ablation_h2h(benchmark):
    result = run_experiment(benchmark, _ablation)
    rows = {r["structure"]: r for r in result.rows}
    assert (
        rows["triangular bit array"]["probe time (s)"]
        < rows["hash set"]["probe time (s)"]
    )
