"""Ablation: separate HNN/NNN loops vs a fused loop (Section 4.5).

The paper keeps the two NHE-driven loops separate so each phase's random
accesses target a single structure (HE in phase 2, NHE in phase 3); a
fused loop interleaves both and enlarges the randomly-accessed working
set.  We replay both access patterns through the scaled SkyLakeX model.
"""

import numpy as np

from repro.core import build_lotus_graph
from repro.eval import experiments as E
from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset
from repro.memsim import MACHINES, MemoryHierarchy
from repro.memsim.trace import lotus_layout, lotus_phase2_trace, lotus_phase3_trace

from conftest import run_experiment


def _fused_trace(lotus) -> np.ndarray:
    """Interleave phase-2 and phase-3 accesses per vertex — the fused loop.

    The per-vertex segments of the two phase traces are merged
    vertex-by-vertex by splitting each phase trace at the vertex
    boundaries implied by its arc structure; a cheap approximation that
    interleaves at a fine grain is to round-robin fixed-size windows of
    the two traces, which matches the fused loop's alternating accesses.
    """
    p2 = lotus_phase2_trace(lotus, lotus_layout(lotus))
    p3 = lotus_phase3_trace(lotus, lotus_layout(lotus))
    window = 64
    parts = []
    for start in range(0, max(p2.size, p3.size), window):
        parts.append(p2[start : start + window])
        parts.append(p3[start : start + window])
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def _ablation(dataset: str = "SK") -> ExperimentResult:
    lotus = build_lotus_graph(load_dataset(dataset))
    machine = MACHINES["SkyLakeX"].scaled(E.CACHE_SCALE)
    layout = lotus_layout(lotus)

    separate = MemoryHierarchy(machine)
    separate.access_lines(lotus_phase2_trace(lotus, layout))
    separate.access_lines(lotus_phase3_trace(lotus, layout))

    fused = MemoryHierarchy(machine)
    fused.access_lines(_fused_trace(lotus))

    return ExperimentResult(
        "ablation_fusion",
        f"Separate HNN/NNN phases vs fused loop [{dataset}]",
        rows=[
            {
                "variant": "separate (Lotus)",
                "LLC misses": separate.stats().llc_misses,
                "DTLB misses": separate.stats().dtlb_misses,
            },
            {
                "variant": "fused",
                "LLC misses": fused.stats().llc_misses,
                "DTLB misses": fused.stats().dtlb_misses,
            },
        ],
        paper_reference={
            "claim": "fusing the loops increases the randomly-accessed "
            "working set and reduces reuse (Section 4.5)"
        },
    )


def test_ablation_fusion(benchmark):
    result = run_experiment(benchmark, _ablation)
    rows = {r["variant"]: r for r in result.rows}
    assert rows["separate (Lotus)"]["LLC misses"] <= rows["fused"]["LLC misses"]
