"""Ablation: LOTUS relabeling vs full degree ordering (Section 4.3.1).

Full degree ordering destroys the input graph's spatial locality; the
LOTUS relabeling only pulls the top 10% of vertices forward and keeps
the original order elsewhere.  We compare the NNN-phase access stream's
reuse profile under both relabelings on a graph with planted community
locality (consecutive IDs inside communities, like crawled web graphs
after LLP ordering).
"""

import numpy as np

from repro.core import LotusConfig, build_lotus_graph
from repro.eval.harness import ExperimentResult
from repro.graph import from_edges
from repro.graph.reorder import apply_degree_ordering, lotus_relabeling_array, relabel
from repro.memsim.reuse import reuse_distance_histogram
from repro.memsim.trace import lotus_layout, lotus_phase3_trace
from repro.util.rng import make_rng

from conftest import run_experiment


def community_graph(
    num_communities: int = 200,
    size: int = 60,
    p_in: float = 0.15,
    inter_edges: int = 8_000,
    hub_edges: int = 30_000,
    seed: int = 5,
):
    """Planted-partition graph with a few hubs: consecutive IDs share a
    community, so the *input order* has spatial locality (the property
    §4.3.1 says degree ordering destroys)."""
    rng = make_rng(seed)
    n = num_communities * size
    parts = []
    for c in range(num_communities):
        base = c * size
        a = rng.integers(0, size, size=int(p_in * size * size))
        b = rng.integers(0, size, size=a.size)
        parts.append(np.column_stack([base + a, base + b]))
    inter = rng.integers(0, n, size=(inter_edges, 2))
    parts.append(inter)
    hubs = rng.integers(0, 20, size=hub_edges)
    spokes = rng.integers(0, n, size=hub_edges)
    parts.append(np.column_stack([hubs, spokes]))
    return from_edges(np.vstack(parts), num_vertices=n)


def _ablation() -> ExperimentResult:
    g = community_graph()
    cfg = LotusConfig(hub_count=64)

    # LOTUS relabeling: head pulled forward, tail order preserved
    lotus_natural = build_lotus_graph(g, cfg)

    # full degree ordering first, then the (now futile) LOTUS relabeling
    degree_ordered, _ = apply_degree_ordering(g)
    lotus_degordered = build_lotus_graph(degree_ordered, cfg)

    cap = 1024  # cache lines
    rows = []
    for label, lotus in (
        ("lotus relabeling (order-preserving)", lotus_natural),
        ("full degree ordering", lotus_degordered),
    ):
        trace = lotus_phase3_trace(lotus, lotus_layout(lotus))
        profile = reuse_distance_histogram(trace)
        rows.append(
            {
                "relabeling": label,
                "NNN trace length": int(trace.size),
                f"LRU({cap} lines) hit rate": profile.hit_rate(cap),
            }
        )
    return ExperimentResult(
        "ablation_ordering",
        "NNN-phase locality: LOTUS relabeling vs degree ordering",
        rows,
        paper_reference={
            "claim": "Lotus assigns the remaining IDs in original order to "
            "avoid destroying initial locality (Section 4.3.1)"
        },
    )


def test_ablation_ordering(benchmark):
    result = run_experiment(benchmark, _ablation)
    rates = {r["relabeling"]: r["LRU(1024 lines) hit rate"] for r in result.rows}
    assert (
        rates["lotus relabeling (order-preserving)"]
        > rates["full degree ordering"]
    )
