"""Figure 1: average end-to-end TC rate (edges/second) per system."""

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig1(benchmark, suite):
    result = run_experiment(benchmark, E.fig1, datasets=suite)
    rates = {r["system"]: r["avg TC rate (edges/s)"] for r in result.rows}
    # paper shape: Lotus has the highest average rate; BBTC and the edge
    # iterator (GraphGrind) trail the Forward-family systems
    assert rates["Lotus"] == max(rates.values())
    assert rates["BBTC"] < rates["GAP"]
    assert rates["GGrnd"] < rates["Lotus"]
