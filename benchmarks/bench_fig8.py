"""Figure 8: percentage of edges in the HE and NHE sub-graphs."""

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig8(benchmark, suite):
    result = run_experiment(benchmark, E.fig8, datasets=suite)
    per = {r["dataset"]: r["HE edges %"] for r in result.rows if r["dataset"] != "Average"}
    avg = result.rows[-1]["HE edges %"]
    # paper shape: about half (or more) of the edges are hub edges on
    # skewed graphs (paper avg 50.1%)...
    assert avg > 40.0
    # ...while the low-skew Friendster captures very few (paper 7.6%)
    if "Frndstr" in per:
        assert per["Frndstr"] == min(per.values())
        assert per["Frndstr"] < 35.0
