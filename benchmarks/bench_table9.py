"""Table 9: thread idle time, edge-balanced vs Squared Edge Tiling."""

import numpy as np

from repro.eval import experiments as E

from conftest import FAST, run_experiment


def test_table9(benchmark):
    datasets = ("Twtr10", "SK") if FAST else ("Twtr10", "TwtrMpi", "SK", "WbCc", "UKDls")
    result = run_experiment(benchmark, E.table9, datasets=datasets, threads=32)
    eb = np.array([r["edge balanced idle %"] for r in result.rows])
    sq = np.array([r["squared tiling idle %"] for r in result.rows])
    # paper shape: edge-balanced idles 13-83% of the time, squared < ~3%
    assert (sq < 3.0).all()
    assert eb.mean() > 10.0
    assert (eb > sq).all()
