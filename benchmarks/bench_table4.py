"""Table 4: dataset inventory of the synthetic stand-ins."""

from repro.eval import experiments as E
from repro.graph.datasets import LARGE_SUITE

from conftest import FAST, FAST_SUITE, run_experiment


def test_table4(benchmark, suite):
    datasets = suite if FAST else suite + LARGE_SUITE
    result = run_experiment(benchmark, E.table4, datasets=datasets)
    assert all(r["triangles"] > 0 for r in result.rows)
    # Table 4 ordering: the large suite must dwarf the small one
    if not FAST:
        small = [r["|E|"] for r in result.rows if r["dataset"] in suite]
        large = [r["|E|"] for r in result.rows if r["dataset"] in LARGE_SUITE]
        assert max(small) < 2 * max(large)
