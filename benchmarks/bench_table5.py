"""Table 5: end-to-end TC execution times, five systems, three machines."""

import numpy as np

from repro.eval import experiments as E

from conftest import run_experiment


def test_table5(benchmark, suite):
    result = run_experiment(benchmark, E.table5, datasets=suite)
    rows = result.rows

    # Paper shape 1: Lotus is fastest end-to-end on average (Table 5's
    # average-speedup row is > 1 against every system).
    for system in ("BBTC", "GGrnd", "GAP"):
        avg_speedup = float(np.mean([r[f"speedup vs {system}"] for r in rows]))
        assert avg_speedup > 1.0, f"Lotus should beat {system} on average"

    # Paper shape 2: the modeled speedup is smaller on Epyc than on
    # SkyLakeX thanks to Epyc's 12x larger L3 (Section 5.2).  Asserted on
    # the social-network stand-ins: the web stand-ins sit in a capacity
    # regime where LOTUS's hot set crosses the scaled Epyc-L3 boundary
    # and the model predicts the opposite sign (see EXPERIMENTS.md).
    social = [r for r in rows if r["dataset"] in ("LJGrp", "Twtr10", "Twtr", "Frndstr")]
    if len(social) >= 2:
        sky = float(np.mean([r["SkyLakeX modeled speedup"] for r in social]))
        epyc = float(np.mean([r["Epyc modeled speedup"] for r in social]))
        assert epyc < sky * 1.02

    # Paper shape 3: modeled speedups land in the paper's 2-5x band
    # for the skewed graphs (all but Friendster).
    skewed = [r for r in rows if r["dataset"] != "Frndstr"]
    avg_modeled = float(np.mean([r["SkyLakeX modeled speedup"] for r in skewed]))
    assert 1.5 < avg_modeled < 8.0
