"""Figure 6: Lotus execution-time breakdown."""

import numpy as np
import pytest

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig6(benchmark, suite):
    result = run_experiment(benchmark, E.fig6, datasets=suite)
    for row in result.rows:
        total_pct = (
            row["preprocess %"] + row["hhh+hhn %"] + row["hnn %"] + row["nnn %"]
        )
        assert total_pct == pytest.approx(100.0, abs=0.5)
    # paper shape: preprocessing is a minor but visible share (19.4% avg),
    # and the low-skew Friendster spends the most time on non-hub triangles
    pre = np.array([r["preprocess %"] for r in result.rows])
    assert 2.0 < pre.mean() < 60.0
    by_name = {r["dataset"]: r for r in result.rows}
    if "Frndstr" in by_name and len(result.rows) > 1:
        others = [r["nnn %"] for r in result.rows if r["dataset"] != "Frndstr"]
        assert by_name["Frndstr"]["nnn %"] > np.mean(others)
