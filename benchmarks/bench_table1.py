"""Table 1: topological characteristics of hubs (top 1% by degree)."""

from repro.eval import experiments as E

from conftest import run_experiment


def test_table1(benchmark, suite):
    result = run_experiment(benchmark, E.table1, datasets=suite)
    avg = result.rows[-1]
    assert avg["dataset"] == "Average"
    # paper shape: hubs attract most edges and almost all triangles,
    # and the hub sub-graph is orders of magnitude denser than the graph
    assert avg["hub edges %"] > 40.0
    assert avg["hub triangles %"] > 80.0
    assert avg["relative density"] > 100.0
    assert avg["fruitless %"] > 20.0
