"""Figure 7: hub vs non-hub triangles counted by Lotus."""

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig7(benchmark, suite):
    result = run_experiment(benchmark, E.fig7, datasets=suite)
    avg = result.rows[-1]
    assert avg["dataset"] == "Average"
    # paper shape: most triangles are counted as hub triangles (68.9% avg)
    assert avg["hub %"] > 60.0
    # and the low-skew Friendster has the smallest hub share (Section 5.5)
    per = {r["dataset"]: r["hub %"] for r in result.rows if r["dataset"] != "Average"}
    if "Frndstr" in per:
        assert per["Frndstr"] == min(per.values())
