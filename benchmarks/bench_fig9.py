"""Figure 9: cumulative H2H accesses vs most frequently accessed cachelines."""

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig9(benchmark):
    result = run_experiment(benchmark, E.fig9, dataset="Twtr10")
    rows = result.rows
    assert rows, "expected a non-empty access distribution"
    # cumulative share must be monotone in the number of lines kept
    shares = [r["cumulative access %"] for r in rows]
    assert all(b >= a for a, b in zip(shares, shares[1:]))
    # paper shape: a modest fraction of cachelines satisfies ~90% of
    # accesses (64MB ~ 25% of H2H in the paper)
    reach_90 = next(
        (r["% of all H2H lines"] for r in rows if r["cumulative access %"] >= 90.0),
        100.0,
    )
    assert reach_90 <= 80.0
