"""Figure 5: memory accesses, instructions, branch mispredictions."""

import numpy as np

from repro.eval import experiments as E

from conftest import run_experiment


def test_fig5(benchmark, suite):
    result = run_experiment(benchmark, E.fig5, datasets=suite)
    mem = np.array([r["mem access reduction x"] for r in result.rows])
    instr = np.array([r["instruction reduction x"] for r in result.rows])
    br = np.array([r["branch-miss reduction x"] for r in result.rows])
    # paper shape: Lotus reduces all three event classes on average
    # (paper: 1.5x / 1.7x / 2.4x)
    assert mem.mean() > 1.2
    assert instr.mean() > 1.2
    assert br.mean() > 1.5
