"""Ablation: intersection kernel choice (Sections 2.2 and 6.3).

Merge join, binary search, hashing, and bitmap lookup all compute the
same counts; their cost profiles differ.  The paper uses merge join for
the short non-hub lists (Section 4.4.3).  We time all four kernels over
the same sample of NNN intersection pairs.
"""

import time

import numpy as np

from repro.core import build_lotus_graph
from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset
from repro.tc.intersect import INTERSECT_KERNELS

from conftest import run_experiment


def _sample_pairs(lotus, max_pairs=3000, seed=0):
    nhe = lotus.nhe
    src = np.repeat(np.arange(nhe.num_vertices, dtype=np.int64), nhe.degrees())
    dst = nhe.indices.astype(np.int64, copy=False)
    rng = np.random.default_rng(seed)
    if src.size > max_pairs:
        pick = rng.choice(src.size, size=max_pairs, replace=False)
        src, dst = src[pick], dst[pick]
    return [(nhe.neighbors(int(v)), nhe.neighbors(int(u))) for v, u in zip(src, dst)]


def _ablation(dataset: str = "SK") -> ExperimentResult:
    lotus = build_lotus_graph(load_dataset(dataset))
    pairs = _sample_pairs(lotus)
    rows = []
    reference = None
    for name, kernel in INTERSECT_KERNELS.items():
        t0 = time.perf_counter()
        total = sum(kernel(a, b) for a, b in pairs)
        elapsed = time.perf_counter() - t0
        if reference is None:
            reference = total
        assert total == reference  # all kernels agree
        rows.append({"kernel": name, "time (s)": elapsed, "common neighbours": total})
    return ExperimentResult(
        "ablation_intersect",
        f"Intersection kernels over {len(pairs)} NNN pairs [{dataset}]",
        rows,
        paper_reference={
            "claim": "merge join avoids per-probe overheads on the short "
            "non-hub lists (Sections 4.4.3, 6.3)"
        },
    )


def test_ablation_intersect(benchmark):
    result = run_experiment(benchmark, _ablation)
    assert len({r["common neighbours"] for r in result.rows}) == 1
