"""Table 8: H2H bit-array density and zero-cacheline fraction."""

from repro.eval import experiments as E
from repro.graph import DATASETS

from conftest import run_experiment


def test_table8(benchmark, suite):
    result = run_experiment(benchmark, E.table8, datasets=suite)
    for row in result.rows:
        # density: a sparse-but-nonzero bit array (paper range 0.15-15.3%)
        assert 0.0 < row["H2H density %"] < 60.0
    # paper shape: web graphs pack hub edges more tightly (more zero
    # cachelines) than social networks spread them
    web = [r["zero cachelines %"] for r in result.rows if DATASETS[r["dataset"]].kind == "WG"]
    sn = [r["zero cachelines %"] for r in result.rows if DATASETS[r["dataset"]].kind == "SN"]
    if web and sn:
        assert max(web) >= min(sn) * 0.2  # both regimes present, non-degenerate
