"""Figure 4: last-level-cache and DTLB misses, Lotus vs Forward.

Also prints the Table 3 machine model in effect (scaled per DESIGN.md).
"""

import numpy as np

from repro.eval import experiments as E
from repro.memsim import MACHINES

from conftest import run_experiment


def test_fig4(benchmark, suite):
    m = MACHINES["SkyLakeX"].scaled(E.CACHE_SCALE)
    print(
        f"\nmachine model: {m.name} L1={m.l1_bytes}B L2={m.l2_bytes}B "
        f"L3={m.l3_bytes_total}B DTLB={m.tlb_entries} entries"
    )
    result = run_experiment(benchmark, E.fig4, datasets=suite)
    skewed = [r for r in result.rows if r["dataset"] != "Frndstr"]
    llc = np.array([r["LLC reduction x"] for r in skewed])
    dtlb = np.array([r["DTLB reduction x"] for r in skewed])
    # paper shape: Lotus reduces LLC misses (avg 2.1x, up to 4x) and DTLB
    # misses (avg 34.6x) on the skewed graphs
    assert llc.mean() > 1.5
    assert llc.max() > 3.0
    assert dtlb.mean() > 1.5
    # Friendster (low skew) benefits least (Section 5.5)
    frndstr = [r for r in result.rows if r["dataset"] == "Frndstr"]
    if frndstr:
        assert frndstr[0]["LLC reduction x"] < llc.mean()
