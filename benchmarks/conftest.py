"""Shared benchmark plumbing.

Each benchmark regenerates one paper table/figure via
:mod:`repro.eval.experiments`, times it with pytest-benchmark (one round
— these are experiment harnesses, not micro-benchmarks), prints the
rendered table, and saves it under ``benchmarks/results/``: the rendered
text table as ``<id>.txt`` plus one structured JSON artifact ``<id>.json``
combining the experiment rows with the observability report (span trees,
counters, gauges, histograms) captured while the experiment ran — see
``docs/observability.md`` for the schema.

Set ``REPRO_BENCH_FAST=1`` to run every experiment on a reduced dataset
suite (useful for smoke-testing the harness).

Every benchmark run also appends one provenance-stamped record to the
run ledger (``runs/`` at the repo root, or ``$REPRO_LEDGER_DIR``), so
historical benchmark runs can be compared with ``repro.cli runs diff``
— see ``docs/runs.md``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.harness import record_experiment_run
from repro.obs import build_report, report_to_json, use_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
LEDGER_DIR = pathlib.Path(
    os.environ.get("REPRO_LEDGER_DIR", "")
    or pathlib.Path(__file__).parents[1] / "runs"
)

FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
FAST_SUITE = ("LJGrp", "Twtr10", "Frndstr", "SK")


def write_experiment_artifacts(result, registry, results_dir=RESULTS_DIR):
    """Persist one experiment's paired artifacts: ``<id>.txt`` + ``<id>.json``.

    Shared by every ``bench_fig*.py`` / ``bench_table*.py`` (via
    :func:`run_experiment`) so each benchmark always leaves a structured
    observability artifact next to its rendered table, plus one run
    record in the ledger.  Returns the rendered text.
    """
    results_dir.mkdir(exist_ok=True)
    text = result.render()
    (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
    obs_report = build_report(
        registry, meta={"experiment_id": result.experiment_id, "fast": FAST}
    )
    payload = {"experiment": result.to_dict(), "observability": obs_report}
    (results_dir / f"{result.experiment_id}.json").write_text(
        report_to_json(payload) + "\n"
    )
    record_experiment_run(
        result, registry, ledger_dir=LEDGER_DIR, extra_config={"fast": FAST}
    )
    return text


def run_experiment(benchmark, fn, *args, **kwargs):
    """Benchmark one experiment function and persist its outputs.

    Writes the human-readable table (``.txt``) and the machine-readable
    experiment + observability artifact (``.json``).
    """
    with use_registry() as registry:
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )
    text = write_experiment_artifacts(result, registry)
    print("\n" + text)
    return result


@pytest.fixture
def suite():
    """Dataset suite for the current mode (full vs fast)."""
    from repro.graph.datasets import SMALL_SUITE

    return FAST_SUITE if FAST else SMALL_SUITE
