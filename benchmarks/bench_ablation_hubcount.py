"""Ablation: hub-count sweep (Sections 4.2 and 5.5).

The paper fixes 64K hubs.  Sweeping the hub count on a scaled graph
shows the trade-off the choice balances: more hubs move triangles from
the NNN phase into the cache-friendly hub phases, but grow the H2H bit
array quadratically.
"""

from repro.core import LotusConfig, count_triangles_lotus
from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset

from conftest import run_experiment


def _sweep(dataset: str = "Twtr10") -> ExperimentResult:
    g = load_dataset(dataset)
    rows = []
    expected = None
    for hub_count in (16, 64, 256, 1024, 4096):
        res = count_triangles_lotus(g, LotusConfig(hub_count=hub_count))
        counts = res.extra["counts"]
        if expected is None:
            expected = res.triangles
        assert res.triangles == expected  # invariant under hub count
        rows.append(
            {
                "hub count": hub_count,
                "hub triangles %": 100.0 * counts.hub_fraction(),
                "HE edges %": 100.0 * res.extra["hub_edge_fraction"],
                "H2H KB": (hub_count * (hub_count - 1) // 2 + 7) // 8 / 1024,
                "total (s)": res.elapsed,
            }
        )
    return ExperimentResult(
        "ablation_hubcount",
        f"Hub-count sweep [{dataset}]",
        rows,
        paper_reference={
            "claim": "64K hubs balance hub-triangle coverage against the "
            "fixed 256MB H2H footprint (Sections 4.2, 5.5)"
        },
    )


def test_ablation_hubcount(benchmark):
    result = run_experiment(benchmark, _sweep)
    hub_pct = [r["hub triangles %"] for r in result.rows]
    # more hubs always capture at least as many triangles
    assert all(b >= a - 1e-9 for a, b in zip(hub_pct, hub_pct[1:]))
    # and the H2H footprint grows quadratically
    kb = [r["H2H KB"] for r in result.rows]
    assert kb[-1] > 100 * kb[0]
