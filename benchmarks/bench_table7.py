"""Table 7: size of topology data — CSX vs Lotus."""

import numpy as np

from repro.eval import experiments as E

from conftest import run_experiment


def test_table7(benchmark, suite):
    result = run_experiment(benchmark, E.table7, datasets=suite)
    growth = np.array([r["growth %"] for r in result.rows])
    # paper shape: Lotus stays within a modest envelope of CSX (the paper
    # averages -4.1% with per-dataset range [-21.6, +28.8])
    assert growth.mean() < 30.0
    assert (growth > -60.0).all()
    # hub-heavy graphs must shrink thanks to the 2-byte HE IDs
    assert growth.min() < 0.0
