"""Extension bench: LOTUS-vs-Forward crossover as skew decreases (§5.5).

The paper's Friendster discussion implies a crossover: as the degree
distribution flattens, hub machinery stops paying off and the Forward
algorithm should be preferred (that is what the adaptive dispatcher
automates).  This sweep generates Chung-Lu graphs with tail exponents
from strongly skewed (gamma ~ 1.9) to nearly homogeneous (gamma ~ 4.0)
and records where the modeled-speedup curve crosses 1.0.
"""

from repro.core import build_lotus_graph
from repro.eval import experiments as E
from repro.eval.harness import ExperimentResult
from repro.graph import powerlaw_chung_lu
from repro.graph.degree import degree_statistics
from repro.graph.reorder import apply_degree_ordering
from repro.memsim import (
    MACHINES,
    MemoryHierarchy,
    forward_opcounts,
    forward_trace,
    lotus_opcounts,
    lotus_trace,
    modeled_seconds,
)

from conftest import run_experiment


def _sweep(n: int = 20_000, avg_deg: float = 14.0) -> ExperimentResult:
    machine = MACHINES["SkyLakeX"].scaled(E.CACHE_SCALE)
    rows = []
    for gamma in (1.9, 2.1, 2.4, 2.8, 3.2, 4.0):
        g = powerlaw_chung_lu(n, avg_deg, exponent=gamma, seed=31)
        stats = degree_statistics(g)
        oriented = apply_degree_ordering(g)[0].orient_lower()
        lotus = build_lotus_graph(g)
        hf = MemoryHierarchy(machine)
        hf.access_lines(forward_trace(oriented))
        hl = MemoryHierarchy(machine)
        hl.access_lines(lotus_trace(lotus))
        tf = modeled_seconds(forward_opcounts(oriented), hf.stats(), machine)
        tl = modeled_seconds(lotus_opcounts(lotus), hl.stats(), machine)
        rows.append(
            {
                "gamma": gamma,
                "max degree": stats.max_degree,
                "gini": stats.gini,
                "modeled speedup": tf.seconds_parallel / tl.seconds_parallel,
            }
        )
    return ExperimentResult(
        "ext_skew_sweep",
        f"Lotus/Forward modeled speedup vs degree-distribution skew (n={n})",
        rows,
        paper_reference={
            "claim": "less power-law graphs may not benefit from Lotus; check "
            "the degree distribution and fall back to Forward (Section 5.5)"
        },
    )


def test_ext_skew_sweep(benchmark):
    result = run_experiment(benchmark, _sweep)
    speedups = [r["modeled speedup"] for r in result.rows]
    # strongly skewed end: Lotus clearly wins
    assert speedups[0] > 1.5
    # the advantage must decay as skew decreases...
    assert speedups[-1] < speedups[0] * 0.7
    # ...and the flattest graphs sit near or below the crossover
    assert min(speedups) < 1.3
