"""Extension bench: HNN blocking (the paper's §7 future-work item).

Sweeps the u-block size and replays the reordered phase-2 access stream
through the SkyLakeX model, quantifying the conjectured locality gain.
"""

from repro.core import build_lotus_graph, count_hnn, count_hnn_blocked, phase2_blocked_trace
from repro.eval import experiments as E
from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset
from repro.memsim import MACHINES, MemoryHierarchy
from repro.memsim.trace import lotus_layout, lotus_phase2_trace

from conftest import run_experiment


def _experiment(dataset: str = "UU") -> ExperimentResult:
    lotus = build_lotus_graph(load_dataset(dataset))
    machine = MACHINES["SkyLakeX"].scaled(E.CACHE_SCALE)
    expected = count_hnn(lotus)
    layout = lotus_layout(lotus)

    rows = []
    base = MemoryHierarchy(machine)
    base.access_lines(lotus_phase2_trace(lotus, layout))
    rows.append(
        {
            "variant": "unblocked (paper's Lotus)",
            "LLC misses": base.stats().llc_misses,
            "DTLB misses": base.stats().dtlb_misses,
        }
    )
    for block_size in (8192, 2048, 512):
        assert count_hnn_blocked(lotus, block_size) == expected
        h = MemoryHierarchy(machine)
        h.access_lines(phase2_blocked_trace(lotus, block_size, layout))
        rows.append(
            {
                "variant": f"u-blocked ({block_size} rows)",
                "LLC misses": h.stats().llc_misses,
                "DTLB misses": h.stats().dtlb_misses,
            }
        )
    return ExperimentResult(
        "ext_blocking",
        f"HNN blocking sweep [{dataset}]",
        rows,
        paper_reference={
            "claim": "locality of HNN may be further improved by applying "
            "blocking strategies to limit the domain of random accesses "
            "(Section 7)"
        },
    )


def test_ext_blocking(benchmark):
    result = run_experiment(benchmark, _experiment)
    base = result.rows[0]["LLC misses"]
    best = min(r["LLC misses"] for r in result.rows[1:])
    assert best <= base
