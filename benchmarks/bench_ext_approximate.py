"""Extension bench: approximate-TC accuracy comparison (Section 6.2).

Compares the four estimators — DOULION, TRIEST-style reservoir, wedge
sampling, and LOTUS streaming with a resident hub structure — on the
same skewed graph at comparable budgets.  The paper's §6.2 claim is that
keeping the hub structures resident improves streaming precision because
hubs create most triangles; the LOTUS-streaming row should show the
smallest error at a sub-full budget.
"""

import numpy as np

from repro.eval.harness import ExperimentResult
from repro.graph import load_dataset
from repro.graph.degree import hub_mask_top_k
from repro.tc import (
    StreamingLotusCounter,
    count_triangles_matrix,
    doulion_estimate,
    reservoir_triangle_estimate,
    wedge_sampling_estimate,
)

from conftest import run_experiment


def _experiment(dataset: str = "Twtr10", seeds: int = 3) -> ExperimentResult:
    g = load_dataset(dataset)
    exact = count_triangles_matrix(g)
    edges = g.edges()
    rng = np.random.default_rng(0)
    stream = edges[rng.permutation(edges.shape[0])]
    hubs = np.flatnonzero(hub_mask_top_k(g, g.num_vertices // 64))

    def rel_errors(fn):
        return [abs(fn(s) - exact) / exact for s in range(seeds)]

    rows = []
    rows.append(
        {
            "estimator": "DOULION p=0.25",
            "mean rel. error %": 100 * float(np.mean(rel_errors(
                lambda s: doulion_estimate(g, 0.25, seed=s)
            ))),
        }
    )
    rows.append(
        {
            "estimator": "reservoir (25% of edges)",
            "mean rel. error %": 100 * float(np.mean(rel_errors(
                lambda s: reservoir_triangle_estimate(
                    stream, reservoir_size=stream.shape[0] // 4, seed=s
                )
            ))),
        }
    )
    rows.append(
        {
            "estimator": "wedge sampling (20k wedges)",
            "mean rel. error %": 100 * float(np.mean(rel_errors(
                lambda s: wedge_sampling_estimate(g, 20_000, seed=s)
            ))),
        }
    )

    def lotus_stream(s):
        c = StreamingLotusCounter(hubs, nn_keep_prob=0.25, seed=s)
        c.update_many(stream)
        return c.estimate_total()

    rows.append(
        {
            "estimator": "LOTUS streaming (hubs resident, 25% NN kept)",
            "mean rel. error %": 100 * float(np.mean(rel_errors(lotus_stream))),
        }
    )
    return ExperimentResult(
        "ext_approximate",
        f"Approximate TC accuracy [{dataset}], exact={exact:,}",
        rows,
        paper_reference={
            "claim": "a resident H2H accelerates streaming TC and improves "
            "its precision (Section 6.2)"
        },
    )


def test_ext_approximate(benchmark):
    result = run_experiment(benchmark, _experiment)
    errors = {r["estimator"]: r["mean rel. error %"] for r in result.rows}
    lotus_err = errors["LOTUS streaming (hubs resident, 25% NN kept)"]
    # §6.2 shape: hub-resident streaming is the most precise estimator here
    assert lotus_err == min(errors.values())
    assert lotus_err < 5.0
